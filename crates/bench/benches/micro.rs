//! Criterion micro-benchmarks for the substrates and the full tester.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use planartest_core::oracle;
use planartest_core::{PlanarityTester, TesterConfig};
use planartest_embed::demoucron::check_planarity;
use planartest_embed::RotationSystem;
use planartest_graph::generators::{nonplanar, planar};
use planartest_graph::NodeId;
use planartest_sim::{Engine, Msg, NodeLogic, Outbox, SimConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_generators(c: &mut Criterion) {
    let mut g = c.benchmark_group("generators");
    g.bench_function("apollonian_1k", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| planar::apollonian(1000, &mut rng))
    });
    g.bench_function("gnp_1k_avg_deg8", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| nonplanar::gnp(1000, 8.0 / 1000.0, &mut rng))
    });
    g.finish();
}

fn bench_embedding(c: &mut Criterion) {
    let mut g = c.benchmark_group("embedding");
    let mut rng = StdRng::seed_from_u64(3);
    let planar_graph = planar::apollonian(300, &mut rng).graph;
    g.bench_function("demoucron_apollonian_300", |b| {
        b.iter(|| check_planarity(&planar_graph))
    });
    let k33 = nonplanar::complete_bipartite(3, 3).graph;
    g.bench_function("demoucron_reject_k33", |b| b.iter(|| check_planarity(&k33)));
    let grid = planar::triangulated_grid(20, 20).graph;
    let rot = check_planarity(&grid).into_rotation().expect("planar");
    g.bench_function("face_trace_trigrid_400", |b| {
        b.iter(|| rot.trace_faces(&grid))
    });
    g.finish();
}

fn bench_oracle(c: &mut Criterion) {
    let mut g = c.benchmark_group("oracle");
    let mut rng = StdRng::seed_from_u64(4);
    let far = nonplanar::planar_plus_chords(400, 400, &mut rng).graph;
    let rot = RotationSystem::from_adjacency(&far);
    let ivs = oracle::non_tree_intervals(&far, &rot, NodeId::new(0));
    g.bench_function("violating_sweep_800ivs", |b| {
        b.iter(|| oracle::count_violating_edges(&ivs))
    });
    g.finish();
}

/// A simple flood protocol to measure raw engine round throughput.
struct Flood {
    seen: Vec<bool>,
}
impl NodeLogic for Flood {
    fn init(&mut self, node: NodeId, out: &mut Outbox<'_>) {
        if node.index() == 0 {
            self.seen[0] = true;
            out.send_all(Msg::words(&[1]));
        }
    }
    fn round(&mut self, node: NodeId, inbox: &[(NodeId, Msg)], out: &mut Outbox<'_>) {
        if !self.seen[node.index()] && !inbox.is_empty() {
            self.seen[node.index()] = true;
            out.send_all(Msg::words(&[1]));
        }
    }
}

fn bench_simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    let grid = planar::grid(40, 40).graph;
    g.bench_function("flood_grid_1600", |b| {
        b.iter_batched(
            || Flood {
                seen: vec![false; grid.n()],
            },
            |mut logic| {
                let mut engine = Engine::new(&grid, SimConfig::default());
                engine.run(&mut logic, 10_000).expect("flood")
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_tester(c: &mut Criterion) {
    let mut g = c.benchmark_group("tester");
    g.sample_size(10);
    let planar_graph = planar::triangulated_grid(10, 10).graph;
    g.bench_function("tester_trigrid_100", |b| {
        let t = PlanarityTester::new(TesterConfig::new(0.1).with_phases(6));
        b.iter(|| t.run(&planar_graph).expect("run"))
    });
    let far = nonplanar::k5_chain(20).graph;
    g.bench_function("tester_k5chain_100", |b| {
        let t = PlanarityTester::new(TesterConfig::new(0.1).with_phases(6));
        b.iter(|| t.run(&far).expect("run"))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_generators,
    bench_embedding,
    bench_oracle,
    bench_simulator,
    bench_tester
);
criterion_main!(benches);
