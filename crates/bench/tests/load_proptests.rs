//! Property tests for the open-loop load harness's deterministic
//! samplers and workload construction (`e15_load`):
//!
//! * the Poisson arrival schedule is bit-identical under one seed,
//!   strictly inside its horizon, monotone, and statistically sane
//!   (mean gap near `1/rate` with generous slack);
//! * the Zipf sampler's draw sequence is bit-identical under one
//!   seed, its exact per-rank masses are strictly monotone decreasing,
//!   and empirical draw frequencies are monotone in rank within
//!   sampling slack;
//! * the full workload build (arrival times × op mix × Zipf targets ×
//!   connection assignment) reproduces bit-identically from
//!   `(seed, rate, horizon)` — the contract `BENCH_load.json`'s
//!   determinism section relies on.

use planartest_bench::{build_workload, OpKind, CONNECTIONS};
use planartest_sim::sampling::{PoissonArrivals, Zipf};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// Same seed ⇒ bit-identical schedule; different seeds diverge
    /// (with overwhelming probability — any schedule with at least a
    /// few arrivals differs somewhere in its 53-bit gap fractions).
    #[test]
    fn poisson_schedule_is_seed_deterministic(
        seed in 0u64..u64::MAX,
        rate in 100.0f64..100_000.0,
    ) {
        let a = PoissonArrivals::schedule(seed, rate, 300_000);
        let b = PoissonArrivals::schedule(seed, rate, 300_000);
        prop_assert_eq!(&a, &b);
        let other = PoissonArrivals::schedule(seed.wrapping_add(1), rate, 300_000);
        if a.len() >= 4 && other.len() >= 4 {
            prop_assert_ne!(a, other);
        }
    }

    /// Every arrival is inside the horizon and the sequence is
    /// monotone non-decreasing (cumulative exponential gaps).
    #[test]
    fn poisson_schedule_is_monotone_and_bounded(
        seed in 0u64..u64::MAX,
        rate in 50.0f64..50_000.0,
        horizon in 10_000u64..500_000,
    ) {
        let s = PoissonArrivals::schedule(seed, rate, horizon);
        prop_assert!(s.iter().all(|&t| t < horizon));
        prop_assert!(s.windows(2).all(|w| w[0] <= w[1]));
    }

    /// The empirical mean inter-arrival gap tracks `1/rate`. With at
    /// least 500 expected arrivals the sample mean of exponential
    /// gaps is within a factor of [0.7, 1.4] of the true mean except
    /// with negligible probability (sd/mean = 1/√n ≈ 4.5%).
    #[test]
    fn poisson_mean_gap_tracks_the_rate(
        seed in 0u64..u64::MAX,
        rate in 5_000.0f64..50_000.0,
    ) {
        let horizon = (500.0 * 1_000_000.0 / rate) as u64 * 2;
        let s = PoissonArrivals::schedule(seed, rate, horizon);
        prop_assert!(s.len() >= 500, "horizon sized for >=1000 expected arrivals");
        let mean_gap = *s.last().unwrap() as f64 / s.len() as f64;
        let expected = 1_000_000.0 / rate;
        prop_assert!(
            mean_gap > 0.7 * expected && mean_gap < 1.4 * expected,
            "mean gap {mean_gap:.1}us vs expected {expected:.1}us over {} arrivals",
            s.len()
        );
    }

    /// Same seed ⇒ identical Zipf draw sequence; every draw in range.
    #[test]
    fn zipf_draws_are_seed_deterministic(
        seed in 0u64..u64::MAX,
        n in 1usize..64,
        s in 0.5f64..2.0,
    ) {
        let zipf = Zipf::new(n, s);
        let draw = |seed: u64| -> Vec<usize> {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..512).map(|_| zipf.sample(&mut rng)).collect()
        };
        let a = draw(seed);
        prop_assert_eq!(&a, &draw(seed));
        prop_assert!(a.iter().all(|&r| r < n));
    }

    /// The distribution itself is exactly monotone: rank k's mass is
    /// strictly greater than rank k+1's, and the masses sum to 1.
    #[test]
    fn zipf_masses_are_strictly_monotone(
        n in 2usize..128,
        s in 0.1f64..3.0,
    ) {
        let zipf = Zipf::new(n, s);
        let total: f64 = (0..n).map(|k| zipf.probability(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        for k in 1..n {
            prop_assert!(
                zipf.probability(k - 1) > zipf.probability(k),
                "mass must strictly decrease in rank (k={k})"
            );
        }
    }

    /// Empirical draw frequencies are monotone in rank within
    /// sampling slack (3·√total per comparison), and the most popular
    /// rank strictly dominates the least popular one.
    #[test]
    fn zipf_empirical_frequencies_are_monotone_in_rank(
        seed in 0u64..u64::MAX,
        n in 2usize..12,
        s in 0.8f64..1.6,
    ) {
        const DRAWS: usize = 40_000;
        let zipf = Zipf::new(n, s);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = vec![0u64; n];
        for _ in 0..DRAWS {
            counts[zipf.sample(&mut rng)] += 1;
        }
        let slack = 3.0 * (DRAWS as f64).sqrt();
        for k in 1..n {
            prop_assert!(
                counts[k - 1] as f64 >= counts[k] as f64 - slack,
                "rank {} drew {} < rank {} drew {} beyond slack {slack:.0}",
                k - 1, counts[k - 1], k, counts[k]
            );
        }
        prop_assert!(
            counts[0] > counts[n - 1],
            "head rank must strictly dominate tail rank: {counts:?}"
        );
    }

    /// The complete workload build reproduces bit-identically from its
    /// inputs: arrival times, op kinds, wire lines, and connection
    /// assignment all come off seeded streams.
    #[test]
    fn workload_build_is_deterministic(
        seed in 0u64..u64::MAX,
        rate in 500.0f64..20_000.0,
    ) {
        let a = build_workload(seed, rate, 120_000);
        let b = build_workload(seed, rate, 120_000);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.per_conn.len(), CONNECTIONS);
        let lines: usize = a.per_conn.iter().map(Vec::len).sum();
        prop_assert_eq!(lines, a.requests);
        // Batch members count as queries; batches count as one request.
        let (mut queries, mut batches) = (0usize, 0usize);
        for arr in a.per_conn.iter().flatten() {
            match arr.kind {
                OpKind::Query => queries += 1,
                OpKind::Batch => batches += 1,
                _ => {}
            }
        }
        prop_assert_eq!(a.queries, queries + 3 * batches);
    }
}
