//! Tester configuration: the explicit constants behind the paper's `Θ(·)`s.

use planartest_embed::RotationSystem;
use planartest_graph::fingerprint::{Digest, Fingerprint};

/// How Stage II obtains the per-part combinatorial embedding (the
/// Ghaffari–Haeupler substitution; `DESIGN.md` §3).
#[derive(Debug, Clone, Default)]
pub enum EmbeddingMode {
    /// Paper-faithful §2.2 behaviour: embed with Demoucron; when a part is
    /// non-planar, hand out a best-effort ordering and let the
    /// violation-detection step do the rejecting. **Not one-sided**: our
    /// reproduction refutes Claim 10 (planar graphs can carry violating
    /// labellings — see `EXPERIMENTS.md` E6), so this mode can reject
    /// planar inputs. Kept for measuring the paper's mechanism.
    Demoucron,
    /// The sound default: a part that the embedder proves non-planar makes
    /// its root reject (the paper's "this constitutes evidence that `Gj`
    /// is not planar"); violating edges are *reported* but are not
    /// rejection evidence. One-sided error is restored: planar parts
    /// always embed, and an `ε/2`-far part is non-planar and is certified
    /// as such.
    #[default]
    DemoucronStrict,
    /// Use a pre-computed planar embedding of the *whole* graph, restricted
    /// to each part (for large certified-planar inputs where the quadratic
    /// embedder would dominate the experiment runtime). Parts where the
    /// hint fails verification fall back to best-effort orderings.
    Hint(RotationSystem),
}

/// Configuration of the planarity tester with every `Θ(·)` constant of the
/// paper made explicit and overridable.
///
/// # Example
///
/// ```
/// use planartest_core::TesterConfig;
///
/// let cfg = TesterConfig::new(0.1).with_seed(42);
/// assert!(cfg.phases(10_000) >= 1);
/// assert!(cfg.peel_super_rounds(1024) >= 10);
/// ```
#[derive(Debug, Clone)]
pub struct TesterConfig {
    /// Distance parameter `ε ∈ (0, 1)`.
    pub epsilon: f64,
    /// RNG seed for the (randomized) Stage II sampling.
    pub seed: u64,
    /// Arboricity bound `α` used by the forest decomposition (3 for
    /// planar graphs).
    pub alpha: usize,
    /// Multiplier `c` in `s = ⌈c · log₂ n⌉` peeling super-rounds. The
    /// paper needs `c` large enough that a constant-fraction decay empties
    /// the graph; 4 is comfortable (each super-round peels ≥ 1/2 of the
    /// remaining nodes when arboricity ≤ α... conservatively ≥ 1/(3α+1)).
    pub peel_rounds_factor: f64,
    /// Override for the number of Stage-I phases `t`; `None` derives
    /// `t = ⌈ln(2/ε) / −ln(1 − 1/(12α))⌉` from Claim 1's decay bound.
    pub phase_override: Option<usize>,
    /// Multiplier `c` in the Stage II sample size `⌈c·ln(n)/ε⌉`.
    pub sample_factor: f64,
    /// Embedding source for Stage II.
    pub embedding: EmbeddingMode,
    /// Global cap on simulated rounds per engine run (protocol-bug guard).
    pub max_rounds: u64,
}

impl TesterConfig {
    /// Creates a configuration with the paper's defaults for distance
    /// parameter `epsilon`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < epsilon < 1`.
    pub fn new(epsilon: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0,1)");
        TesterConfig {
            epsilon,
            seed: 0x9E3779B97F4A7C15,
            alpha: 3,
            peel_rounds_factor: 4.0,
            phase_override: None,
            sample_factor: 2.0,
            embedding: EmbeddingMode::default(),
            max_rounds: 100_000_000,
        }
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of Stage-I phases explicitly.
    pub fn with_phases(mut self, t: usize) -> Self {
        self.phase_override = Some(t);
        self
    }

    /// Sets the embedding mode.
    pub fn with_embedding(mut self, mode: EmbeddingMode) -> Self {
        self.embedding = mode;
        self
    }

    /// Number of Stage-I phases `t = Θ(log 1/ε)`.
    ///
    /// Claim 1 guarantees the inter-part weight shrinks by
    /// `(1 − 1/(12α))` per phase, so after
    /// `t = ⌈ln(2/ε)/−ln(1 − 1/(12α))⌉` phases it is at most `ε·m/2`.
    pub fn phases(&self, _n: usize) -> usize {
        if let Some(t) = self.phase_override {
            return t;
        }
        let decay = 1.0 - 1.0 / (12.0 * self.alpha as f64);
        ((2.0 / self.epsilon).ln() / -decay.ln()).ceil() as usize
    }

    /// Peeling super-rounds `s = ⌈c · log₂ n⌉` (at least 4).
    pub fn peel_super_rounds(&self, n: usize) -> u32 {
        let lg = (n.max(2) as f64).log2();
        ((self.peel_rounds_factor * lg).ceil() as u32).max(4)
    }

    /// Stage II sample size `⌈c · ln(n)/ε⌉` (at least 4).
    pub fn sample_size(&self, n: usize) -> usize {
        ((self.sample_factor * (n.max(2) as f64).ln() / self.epsilon).ceil() as usize).max(4)
    }

    /// The peeling threshold `3α`: a part with at most this many active
    /// neighbouring parts deactivates.
    pub fn peel_threshold(&self) -> usize {
        3 * self.alpha
    }

    /// Stable 128-bit fingerprint of every *outcome-determining* field
    /// **except the seed**: ε, α, the phase/peeling/sampling constants,
    /// the round cap, and the embedding mode (hints fold in their full
    /// rotation-system content — different hints can change Stage-II
    /// verdicts).
    ///
    /// This is the configuration axis of the query service's result
    /// cache key. The seed is deliberately excluded: it is the
    /// Monte-Carlo axis, which the cache tracks separately — rejects are
    /// certificates valid for every seed (one-sided error), accepts are
    /// evidence only for the seeds actually run.
    #[must_use]
    pub fn fingerprint(&self) -> Fingerprint {
        let mut d = Digest::new();
        d.str("TesterConfig/v1")
            .f64(self.epsilon)
            .word(self.alpha as u64)
            .f64(self.peel_rounds_factor)
            .word(match self.phase_override {
                None => u64::MAX,
                Some(t) => t as u64,
            })
            .f64(self.sample_factor)
            .word(self.max_rounds);
        match &self.embedding {
            EmbeddingMode::Demoucron => d.str("demoucron"),
            EmbeddingMode::DemoucronStrict => d.str("demoucron_strict"),
            EmbeddingMode::Hint(rot) => {
                // Fold the full 128-bit rotation digest in as two words.
                let fp = rot.fingerprint().0;
                d.str("hint").word(fp as u64).word((fp >> 64) as u64)
            }
        };
        d.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let cfg = TesterConfig::new(0.1);
        assert_eq!(cfg.alpha, 3);
        assert_eq!(cfg.peel_threshold(), 9);
        // t = ln(20)/-ln(35/36) ~ 106 with the paper's pessimistic decay.
        let t = cfg.phases(1000);
        assert!((100..=120).contains(&t), "t={t}");
        assert!(cfg.peel_super_rounds(1024) == 40);
        assert!(cfg.sample_size(1000) >= 100);
    }

    #[test]
    fn overrides() {
        let cfg = TesterConfig::new(0.2).with_phases(7).with_seed(1);
        assert_eq!(cfg.phases(123), 7);
        assert_eq!(cfg.seed, 1);
    }

    #[test]
    #[should_panic(expected = "epsilon must be in (0,1)")]
    fn zero_epsilon_panics() {
        let _ = TesterConfig::new(0.0);
    }

    #[test]
    fn fingerprint_ignores_seed_and_sees_everything_else() {
        let base = TesterConfig::new(0.1);
        assert_eq!(
            base.fingerprint(),
            base.clone().with_seed(99).fingerprint(),
            "the seed is the cache's Monte-Carlo axis, not a config axis"
        );
        let variants = [
            TesterConfig::new(0.2),
            TesterConfig::new(0.1).with_phases(7),
            TesterConfig::new(0.1).with_embedding(EmbeddingMode::Demoucron),
            {
                let mut c = TesterConfig::new(0.1);
                c.alpha = 4;
                c
            },
            {
                let mut c = TesterConfig::new(0.1);
                c.max_rounds = 1;
                c
            },
            {
                let mut c = TesterConfig::new(0.1);
                c.sample_factor = 3.0;
                c
            },
        ];
        for v in &variants {
            assert_ne!(base.fingerprint(), v.fingerprint(), "{v:?}");
        }
        // Hints key on rotation content.
        let g = planartest_graph::Graph::from_edges(3, [(0, 1), (1, 2), (0, 2)]).unwrap();
        let rot = RotationSystem::from_adjacency(&g);
        let hinted = TesterConfig::new(0.1).with_embedding(EmbeddingMode::Hint(rot));
        assert_ne!(base.fingerprint(), hinted.fingerprint());
    }

    #[test]
    fn epsilon_monotonicity() {
        let a = TesterConfig::new(0.4);
        let b = TesterConfig::new(0.05);
        assert!(a.phases(100) < b.phases(100));
        assert!(a.sample_size(100) < b.sample_size(100));
    }
}
