//! Applications of the minor-free partition (§4.2): property testers for
//! cycle-freeness and bipartiteness (Corollary 16) and `poly(1/ε)`-spanner
//! construction (Corollary 17).
//!
//! All three run the partition first (deterministic Stage I by default)
//! and then a per-part BFS; the per-part checks are exactly the paper's:
//! any non-tree edge witnesses a cycle; a non-tree edge with equal level
//! parity witnesses an odd cycle; tree edges plus all cut edges form the
//! spanner.

mod hereditary;
mod spanner;

pub use hereditary::{test_bipartiteness, test_cycle_freeness, HereditaryOutcome};
pub use spanner::{build_spanner, Spanner};
