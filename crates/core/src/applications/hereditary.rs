//! Cycle-freeness and bipartiteness testers on minor-free graphs
//! (Corollary 16).

use planartest_graph::NodeId;
use planartest_sim::bfs::distributed_bfs;
use planartest_sim::EngineCore;
use planartest_sim::Msg;

use crate::comm;
use crate::config::TesterConfig;
use crate::error::CoreError;
use crate::partition::{run_partition, PartitionState};

/// Outcome of a hereditary-property test.
#[derive(Debug, Clone)]
pub struct HereditaryOutcome {
    /// Nodes that rejected (each holds a witness edge).
    pub rejecting: Vec<NodeId>,
    /// Number of parts in the partition used.
    pub parts: usize,
}

impl HereditaryOutcome {
    /// Whether every node accepted.
    pub fn accepted(&self) -> bool {
        self.rejecting.is_empty()
    }
}

/// Which witness a non-tree edge must exhibit to reject.
enum Witness {
    AnyNonTreeEdge,
    OddCycle,
}

fn run_hereditary<'g, E: EngineCore<'g>>(
    engine: &mut E,
    cfg: &TesterConfig,
    witness: Witness,
) -> Result<HereditaryOutcome, CoreError> {
    let partition = run_partition(engine, cfg)?;
    // Under the minor-free promise Stage I cannot reject; if it does (no
    // promise held), any arboricity evidence also witnesses a cycle.
    let mut rejecting: Vec<NodeId> = partition.rejected.clone();
    let state = &partition.state;
    rejecting.extend(detect_in_parts(engine, cfg, state, witness)?);
    rejecting.sort_unstable();
    rejecting.dedup();
    Ok(HereditaryOutcome {
        rejecting,
        parts: state.part_count(),
    })
}

fn detect_in_parts<'g, E: EngineCore<'g>>(
    engine: &mut E,
    cfg: &TesterConfig,
    state: &PartitionState,
    witness: Witness,
) -> Result<Vec<NodeId>, CoreError> {
    let g = engine.graph();
    let roots: Vec<NodeId> = g.nodes().filter(|&v| state.root[v.index()] == v).collect();
    let part_root = state.root.clone();
    let bfs = distributed_bfs(
        engine,
        &roots,
        move |v, r| part_root[v.index()] == r,
        cfg.max_rounds,
    )?;
    // One exchange round: each node learns neighbour BFS levels.
    let levels: Vec<u64> = (0..g.n())
        .map(|v| bfs.level[v].expect("parts connected") as u64)
        .collect();
    let lv = levels.clone();
    let got = comm::exchange(
        engine,
        move |v, _| Some(Msg::words(&[lv[v.index()]])),
        cfg.max_rounds,
    )?;
    let mut rejecting = Vec::new();
    for v in g.nodes() {
        for &(w, _) in g.neighbors(v) {
            if state.root[v.index()] != state.root[w.index()] {
                continue;
            }
            if bfs.parent[v.index()] == Some(w) || bfs.parent[w.index()] == Some(v) {
                continue;
            }
            // Non-tree edge within the part.
            let w_level = got[v.index()]
                .iter()
                .find(|&&(x, _)| x == w)
                .map(|(_, m)| m.word(0))
                .expect("level exchanged");
            let reject = match witness {
                Witness::AnyNonTreeEdge => true,
                Witness::OddCycle => (levels[v.index()] % 2) == (w_level % 2),
            };
            if reject {
                rejecting.push(v);
                break;
            }
        }
    }
    Ok(rejecting)
}

/// Distributed cycle-freeness tester for minor-free graphs
/// (Corollary 16): accepts forests, rejects graphs `ε`-far from
/// cycle-free (their parts must contain non-tree edges).
///
/// # Errors
///
/// Infrastructure errors only.
pub fn test_cycle_freeness<'g, E: EngineCore<'g>>(
    engine: &mut E,
    cfg: &TesterConfig,
) -> Result<HereditaryOutcome, CoreError> {
    run_hereditary(engine, cfg, Witness::AnyNonTreeEdge)
}

/// Distributed bipartiteness tester for minor-free graphs (Corollary 16):
/// accepts bipartite graphs, rejects when some part contains an odd cycle
/// (witnessed by a non-tree edge closing equal BFS parities).
///
/// # Errors
///
/// Infrastructure errors only.
pub fn test_bipartiteness<'g, E: EngineCore<'g>>(
    engine: &mut E,
    cfg: &TesterConfig,
) -> Result<HereditaryOutcome, CoreError> {
    run_hereditary(engine, cfg, Witness::OddCycle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use planartest_graph::generators::planar;
    use planartest_sim::Engine;
    use planartest_sim::SimConfig;

    fn cfg() -> TesterConfig {
        TesterConfig::new(0.2).with_phases(5)
    }

    #[test]
    fn forest_accepted_cycle_rejected() {
        let mut rng = {
            use rand::SeedableRng;
            rand::rngs::StdRng::seed_from_u64(1)
        };
        let tree = planar::random_tree(50, &mut rng).graph;
        let mut engine = Engine::new(&tree, SimConfig::default());
        assert!(test_cycle_freeness(&mut engine, &cfg()).unwrap().accepted());

        // A single cycle is only 1/m-far from cycle-free, so the tester
        // may accept it when the partition cuts it into path parts; a
        // genuinely far graph must be rejected (grid_cycles_detected).
        let cyc = planar::cycle(24).graph;
        let mut engine = Engine::new(&cyc, SimConfig::default());
        let _ = test_cycle_freeness(&mut engine, &cfg()).unwrap();
    }

    #[test]
    fn grid_cycles_detected() {
        let g = planar::grid(6, 6).graph;
        let mut engine = Engine::new(&g, SimConfig::default());
        assert!(!test_cycle_freeness(&mut engine, &cfg()).unwrap().accepted());
    }

    #[test]
    fn bipartite_grid_accepted() {
        let g = planar::grid(7, 5).graph;
        let mut engine = Engine::new(&g, SimConfig::default());
        let out = test_bipartiteness(&mut engine, &cfg()).unwrap();
        assert!(out.accepted(), "grids are bipartite: {:?}", out.rejecting);
    }

    #[test]
    fn odd_cycles_rejected() {
        // Triangulated grid is full of triangles.
        let g = planar::triangulated_grid(5, 5).graph;
        let mut engine = Engine::new(&g, SimConfig::default());
        assert!(!test_bipartiteness(&mut engine, &cfg()).unwrap().accepted());
    }

    #[test]
    fn even_cycle_bipartite_accepted() {
        let g = planar::cycle(16).graph;
        let mut engine = Engine::new(&g, SimConfig::default());
        assert!(test_bipartiteness(&mut engine, &cfg()).unwrap().accepted());
    }
}
