//! Spanner construction for minor-free graphs (Corollary 17).
//!
//! The spanner is the union of every part's spanning tree with *all*
//! inter-part edges. Minor-free graphs have `O(n)` edges and the partition
//! cuts at most `ε·n` of them, so the spanner has `(1 + O(ε))·n` edges;
//! within a part any edge is detoured through the tree, so the stretch is
//! bounded by twice the part diameter = `poly(1/ε)`.

use planartest_graph::{EdgeId, Graph};
use planartest_sim::EngineCore;

use crate::config::TesterConfig;
use crate::error::CoreError;
use crate::partition::run_partition;

/// A constructed spanner.
#[derive(Debug, Clone)]
pub struct Spanner {
    /// The selected edges.
    pub edges: Vec<EdgeId>,
    /// Edges that are part spanning-tree edges.
    pub tree_edges: usize,
    /// Edges crossing between parts.
    pub cut_edges: usize,
}

impl Spanner {
    /// Spanner size relative to `n` (Corollary 17 bounds it by
    /// `1 + O(ε)`).
    pub fn size_ratio(&self, g: &Graph) -> f64 {
        self.edges.len() as f64 / g.n().max(1) as f64
    }

    /// Exact maximum multiplicative stretch over all graph edges
    /// (oracle-style check: BFS in the spanner per edge endpoint).
    pub fn max_stretch(&self, g: &Graph) -> f64 {
        let keep: std::collections::HashSet<u32> = self.edges.iter().map(|e| e.raw()).collect();
        let (sub, _) = g.edge_subgraph(|e| keep.contains(&e.raw()));
        let mut worst = 1.0f64;
        for (u, v) in g.edges() {
            let d = planartest_graph::algo::bfs::distances(&sub, u)[v.index()]
                .expect("spanners preserve connectivity");
            worst = worst.max(d as f64);
        }
        worst
    }
}

/// Builds the Corollary 17 spanner on `engine`'s graph.
///
/// # Errors
///
/// Infrastructure errors only.
pub fn build_spanner<'g, E: EngineCore<'g>>(
    engine: &mut E,
    cfg: &TesterConfig,
) -> Result<Spanner, CoreError> {
    let partition = run_partition(engine, cfg)?;
    let g = engine.graph();
    let state = &partition.state;
    let mut edges = Vec::new();
    let mut tree_edges = 0;
    let mut cut_edges = 0;
    for e in g.edge_ids() {
        let (u, v) = g.endpoints(e);
        if state.root[u.index()] != state.root[v.index()] {
            edges.push(e);
            cut_edges += 1;
        } else if state.parent[u.index()] == Some(v) || state.parent[v.index()] == Some(u) {
            edges.push(e);
            tree_edges += 1;
        }
    }
    Ok(Spanner {
        edges,
        tree_edges,
        cut_edges,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use planartest_graph::generators::planar;
    use planartest_sim::Engine;
    use planartest_sim::SimConfig;

    #[test]
    fn spanner_on_grid_is_sparse_and_bounded() {
        let g = planar::triangulated_grid(8, 8).graph;
        let cfg = TesterConfig::new(0.25).with_phases(6);
        let mut engine = Engine::new(&g, SimConfig::default());
        let sp = build_spanner(&mut engine, &cfg).unwrap();
        assert_eq!(sp.edges.len(), sp.tree_edges + sp.cut_edges);
        assert!(sp.edges.len() < g.m());
        // Size: trees have n - k edges, plus the cut.
        assert!(sp.size_ratio(&g) <= 2.0, "ratio {}", sp.size_ratio(&g));
        // Stretch is finite and bounded by twice the max part diameter.
        let stretch = sp.max_stretch(&g);
        assert!(stretch >= 1.0);
        assert!(stretch < g.n() as f64);
    }

    #[test]
    fn spanner_of_tree_is_whole_tree() {
        let mut rng = {
            use rand::SeedableRng;
            rand::rngs::StdRng::seed_from_u64(7)
        };
        let g = planar::random_tree(40, &mut rng).graph;
        let cfg = TesterConfig::new(0.3).with_phases(6);
        let mut engine = Engine::new(&g, SimConfig::default());
        let sp = build_spanner(&mut engine, &cfg).unwrap();
        assert_eq!(sp.edges.len(), g.m(), "a tree is its own unique spanner");
        assert_eq!(sp.max_stretch(&g), 1.0);
    }
}
