//! Reusable message-level protocol building blocks used by both stages.
//!
//! Everything here runs on the [`planartest_sim::Engine`] with real
//! messages; rounds and bandwidth are accounted by the engine. The three
//! patterns are:
//!
//! * [`exchange`] — one synchronous round of pairwise neighbour messages;
//! * [`census`] — a capped, streaming convergecast of `(key, value)` items
//!   up part trees (the paper's "at most `3α+1` distinct root ids, else
//!   overflow" aggregation from §2.1.5);
//! * [`stream_broadcast_batch`] / [`up_stream_batch`] — pipelined
//!   multi-message movement down/up part trees (used for candidate
//!   lists, labels and sampled edges, which exceed one message of
//!   bandwidth), serving any number of independent instances through
//!   the instance-multiplexed executor (a batch of one is a plain
//!   single run).

use std::collections::VecDeque;

use planartest_graph::NodeId;
use planartest_sim::tree::TreeTopology;
use planartest_sim::EngineCore;
use planartest_sim::{Msg, NodeLogic, Outbox, RunReport, SimError};

/// One round in which every node sends `msg_for(v, w)` to each neighbour
/// `w` (skipping `None`s); returns what each node received as
/// `(from, msg)` pairs sorted by sender.
pub fn exchange<'g, E, F>(
    engine: &mut E,
    mut msg_for: F,
    max_rounds: u64,
) -> Result<Vec<Vec<(NodeId, Msg)>>, SimError>
where
    E: EngineCore<'g>,
    F: FnMut(NodeId, NodeId) -> Option<Msg>,
{
    struct Logic<'f, F> {
        msg_for: &'f mut F,
        received: Vec<Vec<(NodeId, Msg)>>,
    }
    impl<F: FnMut(NodeId, NodeId) -> Option<Msg>> NodeLogic for Logic<'_, F> {
        fn init(&mut self, node: NodeId, out: &mut Outbox<'_>) {
            // Snapshot neighbours to avoid borrowing out's graph twice.
            let neighbors: Vec<NodeId> = engine_neighbors(out, node);
            for w in neighbors {
                if let Some(m) = (self.msg_for)(node, w) {
                    out.send(w, m);
                }
            }
        }
        fn round(&mut self, node: NodeId, inbox: &[(NodeId, Msg)], _out: &mut Outbox<'_>) {
            // The inbox is a borrowed slice of the engine's delivery
            // arena; one bulk copy moves it into the result table
            // (inline `Msg`s make this a flat memcpy-style clone).
            self.received[node.index()].extend_from_slice(inbox);
        }
    }
    let n = engine.graph().n();
    let mut logic = Logic {
        msg_for: &mut msg_for,
        received: vec![Vec::new(); n],
    };
    engine.run_logic(&mut logic, max_rounds)?;
    for r in &mut logic.received {
        r.sort_by_key(|&(from, _)| from);
    }
    Ok(logic.received)
}

fn engine_neighbors(out: &Outbox<'_>, node: NodeId) -> Vec<NodeId> {
    out.graph()
        .neighbors(node)
        .iter()
        .map(|&(w, _)| w)
        .collect()
}

/// One instance's result in a [`stream_broadcast_batch`]: the messages
/// received per node, plus the instance's own [`RunReport`].
pub type BroadcastLane = (Vec<Vec<Msg>>, RunReport);

/// One instance's result in an [`up_stream_batch`]: the
/// `(relay, message)` lists collected per node, plus the instance's own
/// [`RunReport`].
pub type UpStreamLane = (Vec<Vec<(NodeId, Msg)>>, RunReport);

/// How [`census`] merges two values of the same key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeOp {
    /// Sum values (edge-count aggregation).
    Sum,
    /// Keep the minimum (deactivation-round aggregation).
    Min,
}

impl MergeOp {
    fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            MergeOp::Sum => a + b,
            MergeOp::Min => a.min(b),
        }
    }
}

/// Result of a [`census`] at a part root.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Census {
    /// Aggregated `(key, value)` items (at most the cap many).
    pub items: Vec<(u32, u64)>,
    /// Whether more than `cap` distinct keys were encountered somewhere.
    pub overflow: bool,
}

const TAG_ITEM: u64 = 0;
const TAG_DONE: u64 = 1;

struct CensusLogic<'t> {
    tree: &'t TreeTopology,
    cap: usize,
    merge: MergeOp,
    pending: Vec<usize>,
    acc: Vec<Vec<(u32, u64)>>,
    overflow: Vec<bool>,
    queue: Vec<VecDeque<Msg>>,
    result: Vec<Option<Census>>,
}

impl CensusLogic<'_> {
    fn absorb(&mut self, v: usize, key: u32, val: u64) {
        if let Some(slot) = self.acc[v].iter_mut().find(|(k, _)| *k == key) {
            slot.1 = self.merge.apply(slot.1, val);
        } else if self.acc[v].len() < self.cap {
            self.acc[v].push((key, val));
        } else {
            self.overflow[v] = true;
        }
    }

    fn become_ready(&mut self, node: NodeId, out: &mut Outbox<'_>) {
        let v = node.index();
        self.acc[v].sort_unstable();
        if self.tree.is_root(node) {
            self.result[v] = Some(Census {
                items: std::mem::take(&mut self.acc[v]),
                overflow: self.overflow[v],
            });
            return;
        }
        for &(k, val) in &self.acc[v] {
            self.queue[v].push_back(Msg::words(&[TAG_ITEM, k as u64, val]));
        }
        self.queue[v].push_back(Msg::words(&[TAG_DONE, self.overflow[v] as u64]));
        self.pump(node, out);
    }

    fn pump(&mut self, node: NodeId, out: &mut Outbox<'_>) {
        let v = node.index();
        if let Some(m) = self.queue[v].pop_front() {
            let p = self.tree.parent(node).expect("non-roots have parents");
            out.send(p, m);
            if !self.queue[v].is_empty() {
                out.wake();
            }
        }
    }
}

impl NodeLogic for CensusLogic<'_> {
    fn init(&mut self, node: NodeId, out: &mut Outbox<'_>) {
        self.pending[node.index()] = self.tree.children(node).len();
        if self.pending[node.index()] == 0 {
            self.become_ready(node, out);
        }
    }

    fn round(&mut self, node: NodeId, inbox: &[(NodeId, Msg)], out: &mut Outbox<'_>) {
        let v = node.index();
        let mut newly_done = 0;
        for (_, msg) in inbox {
            match msg.word(0) {
                TAG_ITEM => self.absorb(v, msg.word(1) as u32, msg.word(2)),
                TAG_DONE => {
                    if msg.word(1) != 0 {
                        self.overflow[v] = true;
                    }
                    newly_done += 1;
                }
                other => unreachable!("unknown census tag {other}"),
            }
        }
        let was_pending = self.pending[v];
        self.pending[v] -= newly_done;
        if was_pending > 0 && self.pending[v] == 0 {
            self.become_ready(node, out);
        } else if was_pending == 0 {
            // Already streaming: continue draining the queue.
            self.pump(node, out);
        }
    }
}

/// Streams `(key, value)` items from every node up its part tree to the
/// part root, merging values per key with `merge` and capping the number
/// of distinct keys at `cap` (excess keys set the `overflow` flag —
/// exactly the paper's `> 3α` detection). Returns the census at each root.
///
/// Cost: `O(height · cap)` rounds (store-and-forward, one item-message per
/// edge per round).
///
/// # Errors
///
/// Propagates engine [`SimError`]s.
pub fn census<'g, E: EngineCore<'g>>(
    engine: &mut E,
    tree: &TreeTopology,
    local_items: &[Vec<(u32, u64)>],
    cap: usize,
    merge: MergeOp,
    max_rounds: u64,
) -> Result<Vec<Option<Census>>, SimError> {
    let n = engine.graph().n();
    let mut logic = CensusLogic {
        tree,
        cap,
        merge,
        pending: vec![0; n],
        acc: local_items.to_vec(),
        overflow: vec![false; n],
        queue: vec![VecDeque::new(); n],
        result: vec![None; n],
    };
    // Pre-cap local items (a node may locally see more than cap keys).
    for v in 0..n {
        if logic.acc[v].len() > cap {
            logic.acc[v].sort_unstable();
            logic.acc[v].truncate(cap);
            logic.overflow[v] = true;
        }
    }
    engine.run_logic(&mut logic, max_rounds)?;
    Ok(logic.result)
}

struct StreamBroadcastLogic<'t> {
    tree: &'t TreeTopology,
    queue: Vec<VecDeque<Msg>>,
    received: Vec<Vec<Msg>>,
}

impl StreamBroadcastLogic<'_> {
    fn pump(&mut self, node: NodeId, out: &mut Outbox<'_>) {
        let v = node.index();
        if let Some(m) = self.queue[v].pop_front() {
            for &c in self.tree.children(node) {
                out.send(c, m.clone());
            }
            if !self.queue[v].is_empty() {
                out.wake();
            }
        }
    }
}

impl NodeLogic for StreamBroadcastLogic<'_> {
    fn init(&mut self, node: NodeId, out: &mut Outbox<'_>) {
        if !self.queue[node.index()].is_empty() {
            // Roots seeded with payload; non-root seeds are a caller bug
            // guarded by the public wrapper.
            self.pump(node, out);
        }
    }

    fn round(&mut self, node: NodeId, inbox: &[(NodeId, Msg)], out: &mut Outbox<'_>) {
        let v = node.index();
        for (_, msg) in inbox {
            self.received[v].push(msg.clone());
            self.queue[v].push_back(msg.clone());
        }
        self.pump(node, out);
    }
}

/// Batched pipelined multi-message broadcast: per instance, each root's
/// message list flows down its tree in FIFO order, one message per edge
/// per round; every node receives its root's list (roots' own payloads
/// are *not* echoed back to themselves). The instances execute through
/// the instance-multiplexed executor
/// ([`EngineCore::run_logic_batch`]); each returned [`RunReport`] is
/// bit-for-bit what that instance's sequential run would report.
///
/// Cost per instance: `height + k` rounds for `k` messages.
///
/// # Errors
///
/// Propagates the first instance's engine [`SimError`] (instances are
/// independent; an error is a protocol/infrastructure bug, not data).
pub fn stream_broadcast_batch<'g, E: EngineCore<'g>>(
    engine: &mut E,
    tree: &TreeTopology,
    payloads: Vec<Vec<Vec<Msg>>>,
    max_rounds: u64,
) -> Result<Vec<BroadcastLane>, SimError> {
    let n = engine.graph().n();
    let mut logics: Vec<StreamBroadcastLogic<'_>> = payloads
        .into_iter()
        .map(|payload| {
            debug_assert!(payload
                .iter()
                .enumerate()
                .all(|(v, p)| p.is_empty() || tree.is_root(NodeId::new(v))));
            StreamBroadcastLogic {
                tree,
                queue: payload.into_iter().map(VecDeque::from).collect(),
                received: vec![Vec::new(); n],
            }
        })
        .collect();
    let results = engine.run_logic_batch(&mut logics, max_rounds);
    results
        .into_iter()
        .zip(logics)
        .map(|(result, logic)| result.map(|report| (logic.received, report)))
        .collect()
}

struct UpStreamLogic<'t> {
    tree: &'t TreeTopology,
    queue: Vec<VecDeque<Msg>>,
    collected: Vec<Vec<(NodeId, Msg)>>,
}

impl UpStreamLogic<'_> {
    fn pump(&mut self, node: NodeId, out: &mut Outbox<'_>) {
        let v = node.index();
        match self.tree.parent(node) {
            None => {
                // Root: everything queued is "collected from self".
                while let Some(m) = self.queue[v].pop_front() {
                    self.collected[v].push((node, m));
                }
            }
            Some(p) => {
                if let Some(m) = self.queue[v].pop_front() {
                    out.send(p, m);
                    if !self.queue[v].is_empty() {
                        out.wake();
                    }
                }
            }
        }
    }
}

impl NodeLogic for UpStreamLogic<'_> {
    fn init(&mut self, node: NodeId, out: &mut Outbox<'_>) {
        if !self.queue[node.index()].is_empty() {
            self.pump(node, out);
        }
    }

    fn round(&mut self, node: NodeId, inbox: &[(NodeId, Msg)], out: &mut Outbox<'_>) {
        let v = node.index();
        if self.tree.is_root(node) {
            for (from, msg) in inbox {
                self.collected[v].push((*from, msg.clone()));
            }
        } else {
            for (_, msg) in inbox {
                self.queue[v].push_back(msg.clone());
            }
        }
        self.pump(node, out);
    }
}

/// Batched up-stream collection: per instance, every node's message
/// list moves up its part tree to the root (FIFO, one message per edge
/// per round, store-and-forward through internal nodes). Returns, per
/// instance, the collected `(origin-or-relay, msg)` list at every root
/// — senders along the path are the *relaying* children, so protocols
/// that need origins must encode them in the payload — and the
/// instance's own [`RunReport`].
///
/// This is the Stage-II hot path for serving many Monte-Carlo seeds at
/// once: the per-seed sample streams are the only seed-dependent engine
/// runs of the tester, and here they ride one multiplexed executor
/// ([`EngineCore::run_logic_batch`]).
///
/// Cost per instance: `O(height + total items through the busiest
/// edge)` rounds.
///
/// # Errors
///
/// Propagates the first instance's engine [`SimError`].
pub fn up_stream_batch<'g, E: EngineCore<'g>>(
    engine: &mut E,
    tree: &TreeTopology,
    items: Vec<Vec<Vec<Msg>>>,
    max_rounds: u64,
) -> Result<Vec<UpStreamLane>, SimError> {
    let n = engine.graph().n();
    let mut logics: Vec<UpStreamLogic<'_>> = items
        .into_iter()
        .map(|item| UpStreamLogic {
            tree,
            queue: item.into_iter().map(VecDeque::from).collect(),
            collected: vec![Vec::new(); n],
        })
        .collect();
    let results = engine.run_logic_batch(&mut logics, max_rounds);
    results
        .into_iter()
        .zip(logics)
        .map(|(result, logic)| result.map(|report| (logic.collected, report)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use planartest_graph::Graph;
    use planartest_sim::Engine;
    use planartest_sim::SimConfig;

    /// Path 0-1-2-3-4 rooted at 0; separate root 5 attached to 4? No — 5
    /// is isolated.
    fn setup() -> (Graph, TreeTopology) {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let parent = vec![
            None,
            Some(NodeId::new(0)),
            Some(NodeId::new(1)),
            Some(NodeId::new(2)),
            Some(NodeId::new(3)),
            None,
        ];
        (g.clone(), TreeTopology::from_parents(&g, parent).unwrap())
    }

    #[test]
    fn exchange_roundtrip() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let mut engine = Engine::new(&g, SimConfig::default());
        let got = exchange(
            &mut engine,
            |v, w| Some(Msg::words(&[(v.raw() * 10 + w.raw()) as u64])),
            10,
        )
        .unwrap();
        assert_eq!(got[0].len(), 1);
        assert_eq!(got[1].len(), 2);
        assert_eq!(got[0][0].1.word(0), 10); // from node 1 to node 0
        assert_eq!(got[1][0].1.word(0), 1); // from node 0 to node 1
        assert_eq!(engine.stats().rounds, 1);
    }

    #[test]
    fn exchange_selective() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let mut engine = Engine::new(&g, SimConfig::default());
        let got = exchange(
            &mut engine,
            |v, _| {
                if v.index() == 1 {
                    Some(Msg::ping())
                } else {
                    None
                }
            },
            10,
        )
        .unwrap();
        assert_eq!(got[0].len(), 1);
        assert_eq!(got[1].len(), 0);
        assert_eq!(got[2].len(), 1);
    }

    #[test]
    fn census_sums_and_caps() {
        let (g, tree) = setup();
        let mut engine = Engine::new(&g, SimConfig::default());
        // Every path node contributes (7, 1) and node 4 also (9, 5).
        let mut items = vec![vec![(7u32, 1u64)]; 5];
        items[4].push((9, 5));
        items.push(Vec::new()); // node 5
        let out = census(&mut engine, &tree, &items, 10, MergeOp::Sum, 1000).unwrap();
        let c0 = out[0].as_ref().unwrap();
        assert!(!c0.overflow);
        assert_eq!(c0.items, vec![(7, 5), (9, 5)]);
        let c5 = out[5].as_ref().unwrap();
        assert_eq!(c5.items, Vec::new());
        assert!(out[1].is_none());
    }

    #[test]
    fn census_overflow_detected() {
        let (g, tree) = setup();
        let mut engine = Engine::new(&g, SimConfig::default());
        // Nodes 1..=4 contribute distinct keys; cap is 2.
        let items: Vec<Vec<(u32, u64)>> = (0..6)
            .map(|v| {
                if (1..=4).contains(&v) {
                    vec![(v as u32, 1)]
                } else {
                    vec![]
                }
            })
            .collect();
        let out = census(&mut engine, &tree, &items, 2, MergeOp::Sum, 1000).unwrap();
        let c0 = out[0].as_ref().unwrap();
        assert!(c0.overflow);
        assert_eq!(c0.items.len(), 2);
    }

    #[test]
    fn census_min_merge() {
        let (g, tree) = setup();
        let mut engine = Engine::new(&g, SimConfig::default());
        let mut items = vec![Vec::new(); 6];
        items[2] = vec![(3, 40)];
        items[4] = vec![(3, 17)];
        let out = census(&mut engine, &tree, &items, 4, MergeOp::Min, 1000).unwrap();
        assert_eq!(out[0].as_ref().unwrap().items, vec![(3, 17)]);
    }

    #[test]
    fn stream_broadcast_order_preserved() {
        let (g, tree) = setup();
        let mut engine = Engine::new(&g, SimConfig::default());
        let mut payload = vec![Vec::new(); 6];
        payload[0] = vec![Msg::words(&[1]), Msg::words(&[2]), Msg::words(&[3])];
        let lanes = stream_broadcast_batch(&mut engine, &tree, vec![payload], 1000).unwrap();
        let (got, report) = &lanes[0];
        for (v, msgs) in got.iter().enumerate().take(5).skip(1) {
            let words: Vec<u64> = msgs.iter().map(|m| m.word(0)).collect();
            assert_eq!(words, vec![1, 2, 3], "node {v}");
        }
        assert!(got[5].is_empty());
        // Pipelined: depth 4 + 3 messages - 1 = 6-ish rounds, not 12.
        assert!(report.rounds <= 8, "rounds {}", report.rounds);
        assert_eq!(engine.stats().rounds, report.rounds);
    }

    #[test]
    fn up_stream_collects_everything() {
        let (g, tree) = setup();
        let mut engine = Engine::new(&g, SimConfig::default());
        let items: Vec<Vec<Msg>> = (0..6)
            .map(|v| vec![Msg::words(&[v as u64]), Msg::words(&[100 + v as u64])])
            .collect();
        // Two lanes with distinct payloads: each collects only its own.
        let shifted: Vec<Vec<Msg>> = (0..6)
            .map(|v| vec![Msg::words(&[200 + v as u64])])
            .collect();
        let lanes = up_stream_batch(&mut engine, &tree, vec![items, shifted], 1000).unwrap();
        let mut words: Vec<u64> = lanes[0].0[0].iter().map(|(_, m)| m.word(0)).collect();
        words.sort_unstable();
        assert_eq!(words, vec![0, 1, 2, 3, 4, 100, 101, 102, 103, 104]);
        let w5: Vec<u64> = lanes[0].0[5].iter().map(|(_, m)| m.word(0)).collect();
        assert_eq!(w5, vec![5, 105]);
        let mut words2: Vec<u64> = lanes[1].0[0].iter().map(|(_, m)| m.word(0)).collect();
        words2.sort_unstable();
        assert_eq!(words2, vec![200, 201, 202, 203, 204]);
    }
}
