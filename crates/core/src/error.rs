//! Error type for the tester and its companions.

use std::fmt;

use planartest_sim::SimError;

/// Errors surfaced by the distributed algorithms.
///
/// These are *infrastructure* failures (model violations, budget
/// exhaustion), never test verdicts — rejecting a graph is reported via
/// [`TestOutcome`](crate::TestOutcome), not as an error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The underlying simulation violated the CONGEST model or failed to
    /// quiesce — always a protocol bug, never a property of the input.
    Sim(SimError),
    /// Stage II's sample collection exceeded its budget (probability
    /// `1/poly(n)`; the algorithm reports failure rather than looping).
    SampleOverflow {
        /// Samples drawn.
        drawn: usize,
        /// Budget that was exceeded.
        budget: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Sim(e) => write!(f, "simulation error: {e}"),
            CoreError::SampleOverflow { drawn, budget } => {
                write!(
                    f,
                    "sampled {drawn} edges, budget {budget} (1/poly(n) event)"
                )
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Sim(e) => Some(e),
            CoreError::SampleOverflow { .. } => None,
        }
    }
}

impl From<SimError> for CoreError {
    fn from(e: SimError) -> Self {
        CoreError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoreError::from(SimError::RoundLimitExceeded { limit: 9 });
        assert!(e.to_string().contains("simulation error"));
        assert!(std::error::Error::source(&e).is_some());
        let o = CoreError::SampleOverflow {
            drawn: 10,
            budget: 5,
        };
        assert!(o.to_string().contains("budget 5"));
        assert!(std::error::Error::source(&o).is_none());
    }
}
