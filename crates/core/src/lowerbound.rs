//! The `Ω(log n)` lower-bound construction (Theorem 2, Claims 11–12):
//! a `G(n, p)` graph with `p = c·k²/n` whose short cycles are broken, so
//! it is simultaneously far from planar (Euler certificate) and locally
//! tree-like up to radius `Θ(log n)` — any one-sided tester with fewer
//! rounds sees only planar-consistent views and must accept.

use planartest_graph::algo::girth::{break_short_cycles, girth};
use planartest_graph::generators::{euler_excess, nonplanar, Certified, PlanarityStatus};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A constructed lower-bound instance.
#[derive(Debug, Clone)]
pub struct LowerBoundInstance {
    /// The graph with its far-ness certificate.
    pub certified: Certified,
    /// The short-cycle threshold `ℓ = ln(n)/ln(c·k²)` used (Claim 12).
    pub girth_threshold: u32,
    /// Edges removed while breaking short cycles.
    pub removed_edges: usize,
    /// Measured girth after removal (`None` for forests).
    pub girth: Option<u32>,
}

impl LowerBoundInstance {
    /// The largest number of rounds `r` such that every radius-`r` view is
    /// a tree (girth > 2r + 1): any `r`-round one-sided tester must
    /// accept, since tree views are consistent with a planar graph.
    pub fn max_blind_rounds(&self) -> u32 {
        match self.girth {
            None => u32::MAX,
            Some(g) => (g.saturating_sub(2)) / 2,
        }
    }
}

/// Builds a Theorem 2 instance on `n` nodes with density parameter
/// `ck2 = c·k²` (the paper uses `1000k²`; smaller values keep experiment
/// sizes manageable while preserving the construction's two properties).
/// The short-cycle threshold is floored at 4 so the instance is always
/// locally tree-like for at least one round.
///
/// # Panics
///
/// Panics if `ck2 < 2` or `n < 8`.
pub fn construct(n: usize, ck2: u32, seed: u64) -> LowerBoundInstance {
    assert!(ck2 >= 2, "density parameter must be >= 2");
    assert!(n >= 8, "need at least 8 nodes");
    let mut rng = StdRng::seed_from_u64(seed);
    let p = ck2 as f64 / n as f64;
    let base = nonplanar::gnp(n, p, &mut rng);
    let threshold = ((n as f64).ln() / (ck2 as f64).ln()).floor().max(4.0) as u32;
    let (g, removed) = break_short_cycles(&base.graph, threshold);
    let measured_girth = girth(&g);
    let excess = euler_excess(g.n(), g.m());
    let status = if excess > 0 {
        PlanarityStatus::FarFromPlanar {
            min_removals: excess,
        }
    } else {
        PlanarityStatus::Unknown
    };
    LowerBoundInstance {
        certified: Certified {
            graph: g,
            status,
            name: format!("lowerbound(n={n},ck2={ck2})"),
        },
        girth_threshold: threshold,
        removed_edges: removed,
        girth: measured_girth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_has_high_girth_and_certified_farness() {
        let inst = construct(400, 10, 7);
        let g = &inst.certified.graph;
        // Girth at least the threshold.
        if let Some(girth) = inst.girth {
            assert!(
                girth >= inst.girth_threshold,
                "girth {girth} < {}",
                inst.girth_threshold
            );
        }
        // Density stayed well above planar (few removals, Claim 12).
        assert!(
            matches!(inst.certified.status, PlanarityStatus::FarFromPlanar { .. }),
            "instance lost its far-ness: m={} n={} removed={}",
            g.m(),
            g.n(),
            inst.removed_edges
        );
        assert!(
            inst.certified.far_fraction() > 0.1,
            "{}",
            inst.certified.far_fraction()
        );
        // Blind-round budget is positive: a 1-round tester cannot reject.
        assert!(inst.max_blind_rounds() >= 1);
    }

    #[test]
    fn removals_are_a_small_fraction() {
        let inst = construct(600, 12, 3);
        let m_after = inst.certified.graph.m();
        assert!(
            inst.removed_edges * 4 < m_after,
            "removed {} of {} edges",
            inst.removed_edges,
            m_after
        );
    }

    #[test]
    fn blind_rounds_scale_with_girth() {
        let inst = construct(300, 9, 1);
        if let Some(g) = inst.girth {
            assert_eq!(inst.max_blind_rounds(), (g - 2) / 2);
        }
    }

    #[test]
    #[should_panic(expected = "density parameter")]
    fn tiny_density_panics() {
        let _ = construct(100, 1, 0);
    }
}
