//! Part-level computations of the merging step on the auxiliary
//! (pseudo-)forest `F_i`: Cole–Vishkin 3-colouring, the CHW marking rules,
//! subtree levelling and the even/odd contraction decision.
//!
//! These are computed from root-local knowledge (each part root knows its
//! selected out-edge, its colour, and aggregates over its `F_i`-children);
//! the corresponding CONGEST cost is a constant number of `F_i`-hops, each
//! `2·depth + 2` rounds, charged by the caller (see `DESIGN.md` §3).

use std::collections::HashMap;

/// The auxiliary pseudo-forest over parts: each part has at most one
/// out-edge (its selection), weights on edges, and derived children lists.
#[derive(Debug, Clone)]
pub(crate) struct AuxForest {
    /// Part root raw ids, sorted ascending (dense indices follow).
    pub nodes: Vec<u32>,
    /// Out-edge of each part: `(parent index, weight)`.
    pub parent: Vec<Option<(usize, u64)>>,
    /// In-edges (selector children) of each part.
    pub children: Vec<Vec<usize>>,
}

impl AuxForest {
    /// Builds the forest from per-part selections `root -> (target, w)`.
    pub fn new(all_parts: &[u32], selections: &HashMap<u32, (u32, u64)>) -> Self {
        let mut nodes = all_parts.to_vec();
        nodes.sort_unstable();
        nodes.dedup();
        let idx: HashMap<u32, usize> = nodes.iter().enumerate().map(|(i, &r)| (r, i)).collect();
        let mut parent = vec![None; nodes.len()];
        let mut children = vec![Vec::new(); nodes.len()];
        for (&from, &(to, w)) in selections {
            let (fi, ti) = (idx[&from], idx[&to]);
            parent[fi] = Some((ti, w));
            children[ti].push(fi);
        }
        for c in &mut children {
            c.sort_unstable();
        }
        AuxForest {
            nodes,
            parent,
            children,
        }
    }

    fn n(&self) -> usize {
        self.nodes.len()
    }

    /// Cole–Vishkin colouring adapted to pseudo-forests: reduces the raw
    /// ids to colours in `{0, 1, 2}` that are proper along every
    /// out-edge. Returns `(colours, fi_hops)` where `fi_hops` counts the
    /// parent-colour communications to charge.
    pub fn cole_vishkin(&self) -> (Vec<u8>, u64) {
        let n = self.n();
        let mut color: Vec<u64> = self.nodes.iter().map(|&r| r as u64).collect();
        let mut hops = 0u64;
        // Fictitious parent colour for roots: anything different.
        let parent_color = |color: &[u64], v: usize| -> u64 {
            match self.parent[v] {
                Some((p, _)) => color[p],
                None => u64::from(color[v] == 0),
            }
        };
        // Phase 1: iterated bit-reduction, 32-bit ids need 4 iterations to
        // reach {0..5}; run 6 for slack.
        for _ in 0..6 {
            hops += 1;
            let next: Vec<u64> = (0..n)
                .map(|v| {
                    let (c, pc) = (color[v], parent_color(&color, v));
                    debug_assert_ne!(c, pc, "improper colouring mid-CV");
                    let i = (c ^ pc).trailing_zeros() as u64;
                    2 * i + ((c >> i) & 1)
                })
                .collect();
            color = next;
        }
        debug_assert!(color.iter().all(|&c| c < 6));
        // Phase 2: eliminate colours 5, 4, 3 by shift-down + recolour.
        for target in [5u64, 4, 3] {
            hops += 2;
            let a = color.clone(); // pre-shift
            let mut b: Vec<u64> = (0..n)
                .map(|v| match self.parent[v] {
                    Some((p, _)) => a[p],
                    None => (0..3).find(|&c| c != a[v]).expect("three colours"),
                })
                .collect();
            for v in 0..n {
                if b[v] == target {
                    let pb = match self.parent[v] {
                        Some((p, _)) => b[p],
                        None => u64::MAX,
                    };
                    // Children's post-shift colour is a[v].
                    b[v] = (0..3)
                        .find(|&c| c != pb && c != a[v])
                        .expect("two forbidden colours leave one of three");
                }
            }
            color = b;
        }
        debug_assert!(color.iter().all(|&c| c < 3));
        // Verify properness along out-edges.
        for v in 0..n {
            if let Some((p, _)) = self.parent[v] {
                assert_ne!(
                    color[v], color[p],
                    "Cole-Vishkin produced an improper colouring"
                );
            }
        }
        (color.iter().map(|&c| c as u8 + 1).collect(), hops)
    }

    /// The CHW marking rules (§2.1.2 sub-step 2b) over paper-colours
    /// `{1, 2, 3}`. Returns `marked[v]` = whether `v`'s out-edge is marked.
    pub fn marking(&self, colors: &[u8]) -> Vec<bool> {
        let n = self.n();
        let mut marked = vec![false; n];
        for v in 0..n {
            match colors[v] {
                1 => {
                    let in_sum: u64 = self.children[v]
                        .iter()
                        .map(|&c| self.parent[c].expect("children have out-edges").1)
                        .sum();
                    match self.parent[v] {
                        Some((_, w_out)) if w_out >= in_sum => marked[v] = true,
                        _ => {
                            for &c in &self.children[v] {
                                marked[c] = true;
                            }
                        }
                    }
                }
                2 => {
                    let in3: Vec<usize> = self.children[v]
                        .iter()
                        .copied()
                        .filter(|&c| colors[c] == 3)
                        .collect();
                    let in3_sum: u64 = in3
                        .iter()
                        .map(|&c| self.parent[c].expect("child edge").1)
                        .sum();
                    match self.parent[v] {
                        Some((p, w_out)) if colors[p] == 3 && w_out >= in3_sum => {
                            marked[v] = true;
                        }
                        _ => {
                            for c in in3 {
                                marked[c] = true;
                            }
                        }
                    }
                }
                3 => {}
                other => unreachable!("colour {other} out of range"),
            }
        }
        marked
    }

    /// Levels within the marked subtrees, the per-tree even/odd decision,
    /// and the resulting contraction set. Returns
    /// `(contractions: child→parent pairs, max tree height, fi_hops)`.
    ///
    /// # Panics
    ///
    /// Panics if the marked edges contain a cycle — Claim 15 proves they
    /// cannot.
    pub fn contract_decisions(&self, marked: &[bool]) -> (Vec<(usize, usize)>, u32, u64) {
        let n = self.n();
        // T-parent: parent along marked out-edge.
        let t_parent =
            |v: usize| -> Option<usize> { self.parent[v].filter(|_| marked[v]).map(|(p, _)| p) };
        // Levels with cycle detection (walk each unlevelled chain up to a
        // T-root or an already-levelled node, then assign downward).
        let mut level = vec![u32::MAX; n];
        for v in 0..n {
            if level[v] != u32::MAX {
                continue;
            }
            let mut chain = vec![v];
            let mut base = 0u32;
            loop {
                let cur = *chain.last().expect("nonempty");
                match t_parent(cur) {
                    None => break, // cur is a T-root, level 0
                    Some(p) if level[p] != u32::MAX => {
                        base = level[p] + 1; // chain top hangs below p
                        break;
                    }
                    Some(p) => {
                        assert!(!chain.contains(&p), "marked edges form a cycle (Claim 15)");
                        chain.push(p);
                    }
                }
            }
            for (i, &x) in chain.iter().rev().enumerate() {
                level[x] = base + i as u32;
            }
        }
        let height = level.iter().copied().max().unwrap_or(0);

        // T-root of each node (walk up; height is small by [10]).
        let mut t_root = vec![0usize; n];
        for (v, slot) in t_root.iter_mut().enumerate() {
            let mut cur = v;
            while let Some(p) = t_parent(cur) {
                cur = p;
            }
            *slot = cur;
        }
        let mut w_even: HashMap<usize, u64> = HashMap::new();
        let mut w_odd: HashMap<usize, u64> = HashMap::new();
        for v in 0..n {
            if marked[v] {
                let w = self.parent[v].expect("marked out-edge").1;
                let bucket = if level[v] % 2 == 0 {
                    &mut w_even
                } else {
                    &mut w_odd
                };
                *bucket.entry(t_root[v]).or_insert(0) += w;
            }
        }
        let mut contracts = Vec::new();
        for v in 0..n {
            if !marked[v] {
                continue;
            }
            let root = t_root[v];
            let (e, o) = (
                w_even.get(&root).copied().unwrap_or(0),
                w_odd.get(&root).copied().unwrap_or(0),
            );
            let contract_even = e >= o;
            if (level[v] % 2 == 0) == contract_even {
                contracts.push((v, self.parent[v].expect("marked").0));
            }
        }
        // F_i-hop accounting: levels down + sums up + bit down, each over
        // the tree height, plus the marking exchanges.
        let hops = 2 * (height as u64 + 1) + 4;
        (contracts, height, hops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn forest(parts: &[u32], sel: &[(u32, u32, u64)]) -> AuxForest {
        let map: HashMap<u32, (u32, u64)> = sel.iter().map(|&(a, b, w)| (a, (b, w))).collect();
        AuxForest::new(parts, &map)
    }

    #[test]
    fn cv_proper_on_path() {
        let parts: Vec<u32> = (0..20).collect();
        let sel: Vec<(u32, u32, u64)> = (1..20).map(|i| (i, i - 1, 1)).collect();
        let f = forest(&parts, &sel);
        let (colors, hops) = f.cole_vishkin();
        assert!(colors.iter().all(|&c| (1..=3).contains(&c)));
        for v in 0..f.n() {
            if let Some((p, _)) = f.parent[v] {
                assert_ne!(colors[v], colors[p]);
            }
        }
        assert!(hops >= 6);
    }

    #[test]
    fn cv_proper_on_cycle() {
        // A directed 5-cycle (pseudo-forest with no root).
        let parts: Vec<u32> = (0..5).collect();
        let sel: Vec<(u32, u32, u64)> = (0..5).map(|i| (i, (i + 1) % 5, 1)).collect();
        let f = forest(&parts, &sel);
        let (colors, _) = f.cole_vishkin();
        for v in 0..5 {
            let (p, _) = f.parent[v].unwrap();
            assert_ne!(colors[v], colors[p], "cycle colouring must be proper");
        }
    }

    #[test]
    fn cv_proper_on_star() {
        let parts: Vec<u32> = (0..10).collect();
        let sel: Vec<(u32, u32, u64)> = (1..10).map(|i| (i, 0, i as u64)).collect();
        let f = forest(&parts, &sel);
        let (colors, _) = f.cole_vishkin();
        for v in 1..10 {
            assert_ne!(colors[v], colors[0]);
        }
    }

    #[test]
    fn marking_yields_forest_and_contractions_are_stars() {
        // Random-ish pseudo-forest: chain with some branches.
        let parts: Vec<u32> = (0..12).collect();
        let sel: Vec<(u32, u32, u64)> = vec![
            (1, 0, 5),
            (2, 0, 3),
            (3, 1, 7),
            (4, 1, 2),
            (5, 2, 2),
            (6, 5, 9),
            (7, 5, 1),
            (8, 7, 4),
            (9, 8, 4),
            (10, 9, 4),
            (11, 10, 4),
        ];
        let f = forest(&parts, &sel);
        let (colors, _) = f.cole_vishkin();
        let marked = f.marking(&colors);
        let (contracts, _h, hops) = f.contract_decisions(&marked);
        assert!(hops > 0);
        // Star property: a contraction target is never itself contracted.
        let contracted: std::collections::HashSet<usize> =
            contracts.iter().map(|&(c, _)| c).collect();
        for &(_, p) in &contracts {
            assert!(!contracted.contains(&p), "chain contraction detected");
        }
    }

    #[test]
    fn marking_on_two_cycle_breaks_it() {
        // Mutual selection is resolved by the caller, but a directed
        // 3-cycle can reach marking in the randomized variant.
        let parts: Vec<u32> = (0..3).collect();
        let sel: Vec<(u32, u32, u64)> = vec![(0, 1, 1), (1, 2, 1), (2, 0, 1)];
        let f = forest(&parts, &sel);
        let (colors, _) = f.cole_vishkin();
        let marked = f.marking(&colors);
        // Claim 15: marked graph is a forest; contract_decisions asserts it.
        let (contracts, _, _) = f.contract_decisions(&marked);
        let contracted: std::collections::HashSet<usize> =
            contracts.iter().map(|&(c, _)| c).collect();
        for &(_, p) in &contracts {
            assert!(!contracted.contains(&p));
        }
    }

    #[test]
    fn heavy_chain_contracts_majority_weight() {
        // A path where all weight sits on one parity: the decision must
        // contract at least half the marked weight (Claim 1's engine).
        let parts: Vec<u32> = (0..6).collect();
        let sel: Vec<(u32, u32, u64)> =
            vec![(1, 0, 10), (2, 1, 1), (3, 2, 10), (4, 3, 1), (5, 4, 10)];
        let f = forest(&parts, &sel);
        let (colors, _) = f.cole_vishkin();
        let marked = f.marking(&colors);
        let marked_w: u64 = (0..6)
            .filter(|&v| marked[v])
            .map(|v| f.parent[v].unwrap().1)
            .sum();
        let (contracts, _, _) = f.contract_decisions(&marked);
        let contracted_w: u64 = contracts.iter().map(|&(c, _)| f.parent[c].unwrap().1).sum();
        assert!(2 * contracted_w >= marked_w, "{contracted_w} vs {marked_w}");
    }
}
