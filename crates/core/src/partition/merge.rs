//! The merging step (§2.1.2/§2.1.6): out-edge selection, in-charge node
//! election, CHW marking via the auxiliary forest, and the star
//! contraction with the Lemma 6 tree surgery.

use std::collections::HashMap;

use planartest_graph::NodeId;
use planartest_sim::tree::{broadcast, convergecast};
use planartest_sim::EngineCore;
use planartest_sim::Msg;

use crate::comm;
use crate::config::TesterConfig;
use crate::error::CoreError;
use crate::partition::forest::PeelOutcome;
use crate::partition::{aux::AuxForest, PartitionState};

/// How each part selects its out-edge in the auxiliary graph.
pub(crate) enum Selection {
    /// The heaviest out-edge of the forest-decomposition orientation
    /// (deterministic algorithm, §2.1.2 sub-step 1).
    Heaviest,
    /// An explicit selection (used by the randomized §4 variant), mapping
    /// part root → `(target part root, edge weight)`.
    Explicit(HashMap<u32, (u32, u64)>),
}

const NONE_SENTINEL: u64 = u64::MAX;

/// Executes the merging step, updating `state` in place.
pub(crate) fn run_merge<'g, E: EngineCore<'g>>(
    engine: &mut E,
    cfg: &TesterConfig,
    state: &mut PartitionState,
    peel: &PeelOutcome,
    neighbor_roots: &[Vec<(NodeId, u32)>],
    selection: Selection,
) -> Result<(), CoreError> {
    let g = engine.graph();
    let n = g.n();
    let tree = state.tree(g);
    let max_rounds = cfg.max_rounds;

    // --- Sub-step 1: out-edge selection (root-local). ---
    let mut sel: HashMap<u32, (u32, u64)> = match selection {
        Selection::Explicit(map) => map,
        Selection::Heaviest => {
            let mut map = HashMap::new();
            for (&root, info) in &peel.parts {
                if let Some(&(target, w)) = info
                    .out_edges
                    .iter()
                    .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
                {
                    map.insert(root, (target, w));
                }
            }
            map
        }
    };
    // Resolve mutual selections (possible in the randomized variant):
    // the edge becomes the out-edge of the lower id.
    let mutual: Vec<u32> = sel
        .iter()
        .filter(|&(&a, &(b, _))| a > b && sel.get(&b).map(|&(t, _)| t) == Some(a))
        .map(|(&a, _)| a)
        .collect();
    for a in mutual {
        sel.remove(&a);
    }

    // --- Designated in-charge node election (message-level). ---
    // (1) Roots broadcast their selected target down their trees.
    let sel_c = sel.clone();
    let targets = broadcast(
        engine,
        &tree,
        move |r| {
            Some(Msg::words(&[sel_c
                .get(&r.raw())
                .map_or(NONE_SENTINEL, |&(t, _)| t as u64)]))
        },
        max_rounds,
    )?;
    let target_at: Vec<u64> = (0..n)
        .map(|v| targets[v].as_ref().expect("every part broadcasts").word(0))
        .collect();
    // (2) Convergecast the minimum id of a boundary node with an edge to
    // the target part.
    let nbr = neighbor_roots.to_vec();
    let target_at_c = target_at.clone();
    let mins = convergecast(
        engine,
        &tree,
        move |node, kids: &[(NodeId, Msg)]| {
            let mut best = kids
                .iter()
                .map(|(_, m)| m.word(0))
                .min()
                .unwrap_or(u64::MAX);
            let t = target_at_c[node.index()];
            if t != NONE_SENTINEL && nbr[node.index()].iter().any(|&(_, r)| r as u64 == t) {
                best = best.min(node.raw() as u64);
            }
            Msg::words(&[best])
        },
        max_rounds,
    )?;
    // (3) Roots broadcast the winner id; the winner picks its cross edge.
    let winner_of_root: HashMap<u32, u64> = sel
        .keys()
        .map(|&r| {
            let w = mins[NodeId::from(r).index()]
                .as_ref()
                .expect("selection implies boundary edge exists")
                .word(0);
            debug_assert_ne!(w, u64::MAX, "part selected a target with no boundary edge");
            (r, w)
        })
        .collect();
    let roots_c = state.root.clone();
    let winners = broadcast(
        engine,
        &tree,
        move |r| {
            Some(Msg::words(&[winner_of_root
                .get(&r.raw())
                .copied()
                .unwrap_or(NONE_SENTINEL)]))
        },
        max_rounds,
    )?;
    // In-charge nodes and their cross endpoints.
    let mut in_charge: HashMap<u32, (NodeId, NodeId)> = HashMap::new(); // part -> (u, v)
    for v in 0..n {
        let w = winners[v].as_ref().expect("broadcast reaches all").word(0);
        if w == v as u64 {
            let t = target_at[v];
            let cross = neighbor_roots[v]
                .iter()
                .filter(|&&(_, r)| r as u64 == t)
                .map(|&(x, _)| x)
                .min()
                .expect("winner has an edge to the target part");
            in_charge.insert(roots_c[v].raw(), (NodeId::new(v), cross));
        }
    }
    // (4) Adopt notification across the designated edges (one real round).
    let in_charge_by_node: HashMap<u32, NodeId> =
        in_charge.values().map(|&(u, v)| (u.raw(), v)).collect();
    let _ = comm::exchange(
        engine,
        move |x, w| {
            if in_charge_by_node.get(&x.raw()) == Some(&w) {
                Some(Msg::words(&[1]))
            } else {
                None
            }
        },
        max_rounds,
    )?;

    // --- Sub-steps 2-3: colouring, marking, even/odd decision (charged). ---
    let all_parts: Vec<u32> = state
        .root
        .iter()
        .enumerate()
        .filter(|&(v, r)| r.index() == v)
        .map(|(_, r)| r.raw())
        .collect();
    let forest = AuxForest::new(&all_parts, &sel);
    let (colors, cv_hops) = forest.cole_vishkin();
    let marked = forest.marking(&colors);
    let (contracts, _height, mark_hops) = forest.contract_decisions(&marked);
    let hop_cost = 2 * (tree.height() as u64) + 2;
    engine.charge_rounds((cv_hops + mark_hops) * hop_cost);

    // --- Sub-step 4: contraction (state surgery + charged rounds). ---
    let members = state.members_by_root();
    for &(child_idx, parent_idx) in &contracts {
        let child_root = forest.nodes[child_idx];
        let parent_root = forest.nodes[parent_idx];
        let (u, v) = in_charge[&child_root];
        // Flip the tree path from u up to the old root (Lemma 6).
        let mut path = vec![u];
        let mut cur = u;
        while let Some(p) = state.parent[cur.index()] {
            path.push(p);
            cur = p;
        }
        debug_assert_eq!(
            cur.raw(),
            child_root,
            "in-charge node must be in the child part"
        );
        for w in path.windows(2) {
            state.parent[w[1].index()] = Some(w[0]);
        }
        state.parent[u.index()] = Some(v);
        // Everyone in the child part adopts the parent part's root.
        for &x in &members[&child_root] {
            state.root[x.index()] = NodeId::from(parent_root);
        }
    }
    engine.charge_rounds(2 * hop_cost);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use planartest_graph::generators::planar;
    use planartest_sim::Engine;
    use planartest_sim::SimConfig;

    /// Run one full phase (peel + merge) on a small graph and check the
    /// Lemma 6 invariants.
    #[test]
    fn one_phase_preserves_invariants() {
        let g = planar::grid(5, 5).graph;
        let cfg = TesterConfig::new(0.2);
        let mut engine = Engine::new(&g, SimConfig::default());
        let mut state = PartitionState::singletons(&g);
        let tree = state.tree(&g);
        let nbr = crate::partition::exchange_roots(&mut engine, &state, cfg.max_rounds).unwrap();
        let peel = crate::partition::forest::run_forest_decomposition(
            &mut engine,
            &cfg,
            &state,
            &tree,
            &nbr,
        )
        .unwrap();
        assert!(peel.rejected.is_empty());
        let parts_before = state.part_count();
        run_merge(
            &mut engine,
            &cfg,
            &mut state,
            &peel,
            &nbr,
            Selection::Heaviest,
        )
        .unwrap();
        let parts_after = state.part_count();
        assert!(
            parts_after < parts_before,
            "{parts_after} !< {parts_before}"
        );
        // Lemma 6: trees valid, roots consistent, parts connected.
        let t2 = state.tree(&g);
        for v in g.nodes() {
            assert_eq!(t2.root_of(v), state.root[v.index()]);
        }
        // Roots are their own roots.
        for v in g.nodes() {
            let r = state.root[v.index()];
            assert_eq!(state.root[r.index()], r, "root of part must be in the part");
            assert!(state.parent[r.index()].is_none());
        }
    }
}
