//! The forest-decomposition step (Barenboim–Elkin peeling, §2.1.1/§2.1.5).
//!
//! Each *super-round* is emulated message-level: the part root broadcasts
//! its status down the spanning tree, boundary nodes exchange
//! `(root, deactivation-round)` with neighbouring parts, and two capped
//! census convergecasts bring back (a) the distinct *active* neighbouring
//! parts with edge counts, and (b) the deactivation rounds of parts that
//! deactivated in the previous super-round. A part with at most `3α`
//! active neighbour parts deactivates; whoever survives all
//! `s = Θ(log n)` super-rounds rejects (arboricity evidence).

use std::collections::HashMap;

use planartest_graph::NodeId;
use planartest_sim::tree::TreeTopology;
use planartest_sim::EngineCore;
use planartest_sim::Msg;

use crate::comm::{self, MergeOp};
use crate::config::TesterConfig;
use crate::error::CoreError;
use crate::partition::PartitionState;

/// Sentinel for "still active" in status messages.
const ACTIVE: u64 = u64::MAX;

/// What a part root knows when the step finishes.
#[derive(Debug, Clone, Default)]
pub(crate) struct PartPeelInfo {
    /// Super-round at which the part deactivated (kept for audits even
    /// though the merge step only needs the oriented out-edges).
    #[allow(dead_code)]
    pub deact_round: u32,
    /// Oriented out-edges in the auxiliary graph: `(target root, weight)`,
    /// at most `3α` of them.
    pub out_edges: Vec<(u32, u64)>,
}

/// Outcome of the step for one phase.
#[derive(Debug, Clone, Default)]
pub(crate) struct PeelOutcome {
    /// Root-local info per part (keyed by root raw id); parts that
    /// rejected are absent.
    pub parts: HashMap<u32, PartPeelInfo>,
    /// Roots that remained active after `s` super-rounds (they reject).
    pub rejected: Vec<NodeId>,
    /// Super-rounds actually simulated before quiescence.
    pub super_rounds_used: u32,
}

/// Root-local scratch state during the peeling.
#[derive(Debug, Clone, Default)]
struct RootScratch {
    deact_round: Option<u32>,
    /// Candidates recorded at deactivation: `(root, weight)`.
    candidates: Vec<(u32, u64)>,
    /// Candidate deactivation rounds learned so far.
    cand_deact: HashMap<u32, u32>,
}

pub(crate) fn run_forest_decomposition<'g, E: EngineCore<'g>>(
    engine: &mut E,
    cfg: &TesterConfig,
    state: &PartitionState,
    tree: &TreeTopology,
    neighbor_roots: &[Vec<(NodeId, u32)>],
) -> Result<PeelOutcome, CoreError> {
    let g = engine.graph();
    let n = g.n();
    let s = cfg.peel_super_rounds(n);
    let cap = cfg.peel_threshold() + 1; // 3α + 1
    let max_rounds = cfg.max_rounds;

    // Root-local knowledge, keyed by root raw id.
    let mut scratch: HashMap<u32, RootScratch> = HashMap::new();
    for v in g.nodes() {
        if state.root[v.index()] == v {
            scratch.insert(v.raw(), RootScratch::default());
        }
    }

    let mut rounds_per_super_round: u64 = 0;
    let mut super_rounds_used = 0u32;
    let mut quiesced_at: Option<u32> = None;

    for ell in 1..=(s + 1) {
        // Early exit: once every part is inactive and one extra
        // super-round has resolved same-round candidates, further
        // super-rounds carry no state changes. Charge their cost instead
        // of simulating them.
        let all_inactive = scratch.values().all(|sc| sc.deact_round.is_some());
        if let Some(q) = quiesced_at {
            if all_inactive && ell > q + 1 {
                engine.charge_rounds((s + 1 - ell + 1) as u64 * rounds_per_super_round);
                break;
            }
        }
        if all_inactive && quiesced_at.is_none() {
            quiesced_at = Some(ell - 1);
        }
        super_rounds_used = ell;
        let before = engine.stats().rounds;

        // R1: status broadcast down every part tree.
        let status_of_root: HashMap<u32, u64> = scratch
            .iter()
            .map(|(&r, sc)| (r, sc.deact_round.map_or(ACTIVE, u64::from)))
            .collect();
        let statuses = planartest_sim::tree::broadcast(
            engine,
            tree,
            |r| {
                Some(Msg::words(&[*status_of_root
                    .get(&r.raw())
                    .expect("root known")]))
            },
            max_rounds,
        )?;
        let my_status: Vec<u64> = (0..n)
            .map(|v| {
                statuses[v]
                    .as_ref()
                    .expect("all nodes are in some part")
                    .word(0)
            })
            .collect();

        // R2: boundary exchange of (my root, my part's status).
        let roots = state.root.clone();
        let nbr: Vec<Vec<(NodeId, u32)>> = neighbor_roots.to_vec();
        let my_status_c = my_status.clone();
        let received = comm::exchange(
            engine,
            move |v, w| {
                let different = nbr[v.index()]
                    .iter()
                    .any(|&(x, r)| x == w && r != roots[v.index()].raw());
                if different {
                    Some(Msg::words(&[
                        roots[v.index()].raw() as u64,
                        my_status_c[v.index()],
                    ]))
                } else {
                    None
                }
            },
            max_rounds,
        )?;

        // Local item assembly for the two censuses.
        let mut active_items: Vec<Vec<(u32, u64)>> = vec![Vec::new(); n];
        let mut newly_items: Vec<Vec<(u32, u64)>> = vec![Vec::new(); n];
        for v in 0..n {
            for (_, msg) in &received[v] {
                let root = msg.word(0) as u32;
                let status = msg.word(1);
                if status == ACTIVE {
                    push_count(&mut active_items[v], root);
                } else if status + 1 == ell as u64 {
                    // Part deactivated in the previous super-round.
                    if let Some(slot) = newly_items[v].iter_mut().find(|(k, _)| *k == root) {
                        slot.1 = slot.1.min(status);
                    } else {
                        newly_items[v].push((root, status));
                    }
                }
            }
        }

        // R3: census of distinct active neighbouring parts (with weights).
        let active_census =
            comm::census(engine, tree, &active_items, cap, MergeOp::Sum, max_rounds)?;
        // R4: census of parts that deactivated last super-round.
        let newly_census = comm::census(engine, tree, &newly_items, cap, MergeOp::Min, max_rounds)?;

        // Root decisions (local computation).
        for v in g.nodes() {
            if state.root[v.index()] != v {
                continue;
            }
            let sc = scratch.get_mut(&v.raw()).expect("root known");
            // Record candidate deactivations.
            if let Some(c) = &newly_census[v.index()] {
                for &(root, round) in &c.items {
                    sc.cand_deact.entry(root).or_insert(round as u32);
                }
            }
            if sc.deact_round.is_none() {
                let census = active_census[v.index()]
                    .as_ref()
                    .expect("census reaches root");
                let active_neighbors = census.items.len();
                if !census.overflow && active_neighbors <= cfg.peel_threshold() {
                    sc.deact_round = Some(ell);
                    sc.candidates = census.items.clone();
                }
            }
        }

        rounds_per_super_round = (engine.stats().rounds - before).max(1);
    }

    // Final assembly: orientation of out-edges per §2.1.6.
    let mut outcome = PeelOutcome {
        super_rounds_used,
        ..Default::default()
    };
    for v in g.nodes() {
        if state.root[v.index()] != v {
            continue;
        }
        let sc = &scratch[&v.raw()];
        match sc.deact_round {
            None => outcome.rejected.push(v),
            Some(mine) => {
                let mut out_edges = Vec::new();
                for &(target, weight) in &sc.candidates {
                    let their = sc.cand_deact.get(&target).copied();
                    let outgoing = match their {
                        // Still active when we deactivated and never seen
                        // deactivating: either it rejects (global reject)
                        // or it deactivated later than us.
                        None => true,
                        Some(t) if t > mine => true,
                        Some(t) if t == mine => target > v.raw(),
                        Some(_) => false,
                    };
                    if outgoing {
                        out_edges.push((target, weight));
                    }
                }
                outcome.parts.insert(
                    v.raw(),
                    PartPeelInfo {
                        deact_round: mine,
                        out_edges,
                    },
                );
            }
        }
    }
    outcome.rejected.sort_unstable();
    Ok(outcome)
}

fn push_count(items: &mut Vec<(u32, u64)>, key: u32) {
    if let Some(slot) = items.iter_mut().find(|(k, _)| *k == key) {
        slot.1 += 1;
    } else {
        items.push((key, 1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use planartest_graph::generators::{nonplanar, planar};
    use planartest_graph::Graph;
    use planartest_sim::Engine;
    use planartest_sim::SimConfig;

    fn peel_graph(g: &Graph, cfg: &TesterConfig) -> PeelOutcome {
        let state = PartitionState::singletons(g);
        let tree = state.tree(g);
        let mut engine = Engine::new(g, SimConfig::default());
        let nbr = crate::partition::exchange_roots(&mut engine, &state, cfg.max_rounds).unwrap();
        run_forest_decomposition(&mut engine, cfg, &state, &tree, &nbr).unwrap()
    }

    #[test]
    fn grid_peels_without_rejection() {
        let g = planar::grid(8, 8).graph;
        let out = peel_graph(&g, &TesterConfig::new(0.1));
        assert!(out.rejected.is_empty());
        assert_eq!(out.parts.len(), 64);
        // Every part has at most 3α out-edges and correct total weight.
        let mut total_weight: u64 = 0;
        for info in out.parts.values() {
            assert!(info.out_edges.len() <= 9);
            total_weight += info.out_edges.iter().map(|&(_, w)| w).sum::<u64>();
        }
        // Every edge of the grid is oriented exactly once.
        assert_eq!(total_weight, g.m() as u64);
    }

    #[test]
    fn orientation_is_antisymmetric() {
        let g = planar::triangulated_grid(5, 5).graph;
        let out = peel_graph(&g, &TesterConfig::new(0.1));
        for (&r, info) in &out.parts {
            for &(target, _) in &info.out_edges {
                let back = &out.parts[&target];
                assert!(
                    back.out_edges.iter().all(|&(t, _)| t != r),
                    "edge {r}<->{target} oriented both ways"
                );
            }
        }
    }

    #[test]
    fn out_edges_form_dag() {
        // Follow out-edges greedily: ids must not cycle (guaranteed by the
        // deactivation-time ordering).
        let g = planar::apollonian(60, &mut rand_rng()).graph;
        let out = peel_graph(&g, &TesterConfig::new(0.1));
        assert!(out.rejected.is_empty());
        // Topological check via repeated sink removal on the aux DAG.
        let mut outdeg: HashMap<u32, usize> = HashMap::new();
        let mut incoming: HashMap<u32, Vec<u32>> = HashMap::new();
        for (&r, info) in &out.parts {
            outdeg.insert(r, info.out_edges.len());
            for &(t, _) in &info.out_edges {
                incoming.entry(t).or_default().push(r);
            }
        }
        let mut queue: Vec<u32> = outdeg
            .iter()
            .filter(|&(_, &d)| d == 0)
            .map(|(&r, _)| r)
            .collect();
        let mut removed = 0;
        while let Some(r) = queue.pop() {
            removed += 1;
            for &p in incoming.get(&r).map(|v| v.as_slice()).unwrap_or(&[]) {
                let d = outdeg.get_mut(&p).expect("known part");
                *d -= 1;
                if *d == 0 {
                    queue.push(p);
                }
            }
        }
        assert_eq!(
            removed,
            out.parts.len(),
            "out-edge orientation contains a cycle"
        );
    }

    #[test]
    fn dense_graph_rejects() {
        // K13: min active degree 12 > 9 forever.
        let g = nonplanar::complete(13).graph;
        let out = peel_graph(&g, &TesterConfig::new(0.1));
        assert_eq!(out.rejected.len(), 13);
    }

    #[test]
    fn k10_peels_fine() {
        // K10 has max degree 9 <= 3α: everyone deactivates immediately
        // (the peeling bounds arboricity only from one side).
        let g = nonplanar::complete(10).graph;
        let out = peel_graph(&g, &TesterConfig::new(0.1));
        assert!(out.rejected.is_empty());
    }

    fn rand_rng() -> rand::rngs::StdRng {
        use rand::SeedableRng;
        rand::rngs::StdRng::seed_from_u64(5)
    }
}
