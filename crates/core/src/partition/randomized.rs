//! The randomized minor-free partition (§4, Theorem 4): no arboricity
//! verification, and the heaviest-out-edge selection is replaced by
//! `s = Θ(log 1/δ)` rounds of weighted random edge selection (§4.1).

use std::collections::HashMap;

use planartest_graph::NodeId;
use planartest_sim::tree::{broadcast, convergecast};
use planartest_sim::EngineCore;
use planartest_sim::Msg;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::TesterConfig;
use crate::error::CoreError;
use crate::partition::forest::PeelOutcome;
use crate::partition::merge::{run_merge, Selection};
use crate::partition::{Partition, PartitionState, PhaseMetrics};

/// Configuration for the randomized partition.
#[derive(Debug, Clone)]
pub struct RandomPartitionConfig {
    /// Edge-cut parameter `ε`.
    pub epsilon: f64,
    /// Failure probability `δ`.
    pub delta: f64,
    /// Master seed (per-node randomness is derived deterministically).
    pub seed: u64,
    /// Override for the number of phases.
    pub phase_override: Option<usize>,
}

impl RandomPartitionConfig {
    /// Creates a configuration for parameters `epsilon` and `delta`.
    ///
    /// # Panics
    ///
    /// Panics unless both parameters are in `(0, 1)`.
    pub fn new(epsilon: f64, delta: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0,1)");
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
        RandomPartitionConfig {
            epsilon,
            delta,
            seed: 0xDEC0DE,
            phase_override: None,
        }
    }

    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the phase count explicitly.
    pub fn with_phases(mut self, t: usize) -> Self {
        self.phase_override = Some(t);
        self
    }

    /// Number of phases `t = Θ(log 1/ε)` using Claim 14's decay
    /// `(1 − 1/(64α))` with `α = 3`.
    pub fn phases(&self) -> usize {
        if let Some(t) = self.phase_override {
            return t;
        }
        let decay: f64 = 1.0 - 1.0 / (64.0 * 3.0);
        ((2.0 / self.epsilon).ln() / -decay.ln()).ceil() as usize
    }

    /// Selection trials per phase `s = Θ(log 1/δ)`.
    pub fn trials(&self) -> usize {
        ((1.0 / self.delta).ln().ceil() as usize).max(1)
    }
}

/// Runs the randomized minor-free partition (Theorem 4) on `engine`'s
/// graph. Unlike Stage I it never rejects: the arboricity verification is
/// skipped under the minor-free promise.
///
/// # Errors
///
/// Infrastructure errors only.
pub fn run_randomized_partition<'g, E: EngineCore<'g>>(
    engine: &mut E,
    cfg: &RandomPartitionConfig,
) -> Result<Partition, CoreError> {
    let g = engine.graph();
    let tester_cfg = TesterConfig::new(cfg.epsilon).with_seed(cfg.seed);
    let mut state = PartitionState::singletons(g);
    let mut phases = Vec::new();
    let t = cfg.phases();

    for phase in 1..=t {
        let tree = state.tree(g);
        let neighbor_roots =
            crate::partition::exchange_roots(engine, &state, tester_cfg.max_rounds)?;
        let boundary = neighbor_roots
            .iter()
            .enumerate()
            .any(|(v, ns)| ns.iter().any(|&(_, r)| r != state.root[v].raw()));
        if !boundary {
            engine.charge_rounds((t - phase + 1) as u64 * (2 * tree.height() as u64 + 4));
            break;
        }

        // Weighted-edge selection: `trials` independent uniform draws of a
        // boundary edge per part; keep the heaviest drawn auxiliary edge.
        let mut best: HashMap<u32, (u32, u64)> = HashMap::new();
        for trial in 0..cfg.trials() {
            // (a) Uniform boundary-edge draw per part, via a weighted
            // reservoir convergecast (each node proposes a uniform pick
            // among its own boundary edges, with multiplicity counts).
            let roots = state.root.clone();
            let nbr = neighbor_roots.clone();
            let seed = cfg.seed;
            let draws = convergecast(
                engine,
                &tree,
                move |node, kids: &[(NodeId, Msg)]| {
                    // Message: (candidate target root, count) or
                    // (MAX, 0) when the subtree has no boundary edge.
                    let mut rng = node_rng(seed, phase as u64, trial as u64, node);
                    let my_root = roots[node.index()].raw();
                    let outs: Vec<u32> = nbr[node.index()]
                        .iter()
                        .filter(|&&(_, r)| r != my_root)
                        .map(|&(_, r)| r)
                        .collect();
                    let mut total: u64 = 0;
                    let mut pick: u64 = u64::MAX;
                    // Own uniform candidate.
                    if !outs.is_empty() {
                        total = outs.len() as u64;
                        pick = outs[rng.random_range(0..outs.len())] as u64;
                    }
                    for (_, m) in kids {
                        let (cand, cnt) = (m.word(0), m.word(1));
                        if cnt == 0 {
                            continue;
                        }
                        total += cnt;
                        // Replace with probability cnt/total: uniform merge.
                        if rng.random_range(0..total) < cnt {
                            pick = cand;
                        }
                    }
                    Msg::words(&[pick, total])
                },
                tester_cfg.max_rounds,
            )?;
            // (b) Broadcast the drawn target; (c) convergecast its weight.
            let mut drawn: HashMap<u32, u32> = HashMap::new();
            for v in g.nodes() {
                if state.root[v.index()] == v {
                    if let Some(m) = &draws[v.index()] {
                        if m.word(1) > 0 {
                            drawn.insert(v.raw(), m.word(0) as u32);
                        }
                    }
                }
            }
            let drawn_c = drawn.clone();
            let targets = broadcast(
                engine,
                &tree,
                move |r| {
                    Some(Msg::words(&[drawn_c
                        .get(&r.raw())
                        .map_or(u64::MAX, |&t| t as u64)]))
                },
                tester_cfg.max_rounds,
            )?;
            let nbr2 = neighbor_roots.clone();
            let weights = convergecast(
                engine,
                &tree,
                move |node, kids: &[(NodeId, Msg)]| {
                    let t = targets[node.index()].as_ref().expect("bcast").word(0);
                    let mut w: u64 = kids.iter().map(|(_, m)| m.word(0)).sum();
                    if t != u64::MAX {
                        w += nbr2[node.index()]
                            .iter()
                            .filter(|&&(_, r)| r as u64 == t)
                            .count() as u64;
                    }
                    Msg::words(&[w])
                },
                tester_cfg.max_rounds,
            )?;
            for (&root, &target) in &drawn {
                let w = weights[NodeId::from(root).index()]
                    .as_ref()
                    .expect("root")
                    .word(0);
                let entry = best.entry(root).or_insert((target, 0));
                if w > entry.1 {
                    *entry = (target, w);
                }
            }
        }

        // Merge with the explicit selection; a synthetic PeelOutcome
        // carries no out-edges (they are not used by Explicit selection).
        let peel = PeelOutcome::default();
        run_merge(
            engine,
            &tester_cfg,
            &mut state,
            &peel,
            &neighbor_roots,
            Selection::Explicit(best),
        )?;

        phases.push(PhaseMetrics {
            phase,
            cut_weight: state.cut_weight(g),
            parts: state.part_count(),
            max_depth: state.max_depth(g),
            peel_super_rounds: 0,
        });
    }

    Ok(Partition {
        state,
        rejected: Vec::new(),
        phases,
    })
}

fn node_rng(seed: u64, phase: u64, trial: u64, node: NodeId) -> StdRng {
    // SplitMix-style mixing of the coordinates into one seed.
    let mut x = seed
        ^ phase.wrapping_mul(0x9E3779B97F4A7C15)
        ^ trial.wrapping_mul(0xBF58476D1CE4E5B9)
        ^ (node.raw() as u64).wrapping_mul(0x94D049BB133111EB);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58476D1CE4E5B9);
    x ^= x >> 27;
    StdRng::seed_from_u64(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use planartest_graph::generators::planar;
    use planartest_sim::Engine;
    use planartest_sim::SimConfig;

    #[test]
    fn config_derivations() {
        let cfg = RandomPartitionConfig::new(0.1, 0.05);
        assert!(cfg.phases() > 100); // pessimistic Claim 14 constant
        assert_eq!(cfg.trials(), 3);
        assert_eq!(RandomPartitionConfig::new(0.1, 0.9).trials(), 1);
    }

    #[test]
    fn randomized_partition_merges_grid() {
        let g = planar::grid(6, 6).graph;
        let cfg = RandomPartitionConfig::new(0.2, 0.2)
            .with_phases(8)
            .with_seed(3);
        let mut engine = Engine::new(&g, SimConfig::default());
        let p = run_randomized_partition(&mut engine, &cfg).unwrap();
        assert!(p.completed_successfully());
        let first = p.phases.first().unwrap();
        assert!(first.parts < 36, "first phase must merge something");
        // Invariants.
        let tree = p.state.tree(&g);
        for v in g.nodes() {
            assert_eq!(tree.root_of(v), p.state.root[v.index()]);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let g = planar::triangulated_grid(5, 5).graph;
        let cfg = RandomPartitionConfig::new(0.2, 0.2)
            .with_phases(5)
            .with_seed(11);
        let run = |cfg: &RandomPartitionConfig| {
            let mut engine = Engine::new(&g, SimConfig::default());
            run_randomized_partition(&mut engine, cfg)
                .unwrap()
                .state
                .root
        };
        assert_eq!(run(&cfg), run(&cfg));
        let other = RandomPartitionConfig::new(0.2, 0.2)
            .with_phases(5)
            .with_seed(13);
        // Different seeds usually differ (not guaranteed — the partition
        // on this small graph has few distinct outcomes, so some seed
        // pairs collide — but seeds 11 and 13 differ under the
        // workspace's StdRng stream).
        assert_ne!(run(&cfg), run(&other));
    }

    #[test]
    #[should_panic(expected = "delta must be in (0,1)")]
    fn bad_delta_panics() {
        let _ = RandomPartitionConfig::new(0.1, 1.0);
    }
}
