//! Stage I: the deterministic partition algorithm (§2.1 of the paper) and
//! its randomized minor-free variant (§4, Theorem 4).
//!
//! Each *phase* coarsens the current partition: a Barenboim–Elkin forest
//! decomposition step bounds the arboricity of the contracted auxiliary
//! graph `G_i` (rejecting on evidence of arboricity > α), then the
//! Czygrinow–Hańćkowiak–Wawrzyniak merging step contracts a constant
//! fraction of the remaining inter-part weight (Claim 1).
//!
//! ## Simulation fidelity
//!
//! The dominant-cost protocols run **message-level** on the CONGEST
//! engine: per-phase neighbour-root exchange, and per-super-round status
//! broadcasts, boundary exchanges and capped census convergecasts (the
//! `Θ(log n · D_i)` term), as well as the designated-edge election of the
//! merging step. The part-level bookkeeping of the merging step
//! (Cole–Vishkin colouring of `F_i`, marking, subtree levelling and the
//! contraction surgery of Lemma 6) is computed from root-local knowledge
//! and *charged* rounds according to the paper's own cost accounting
//! (`O(1)` `F_i`-hops, each `2·depth + 2` rounds) — see `DESIGN.md` §3.

pub(crate) mod aux;
mod forest;
mod merge;
pub mod randomized;

use planartest_graph::{Graph, NodeId};
use planartest_sim::tree::TreeTopology;
use planartest_sim::EngineCore;
use planartest_sim::Msg;

use crate::comm;
use crate::config::TesterConfig;
use crate::error::CoreError;

/// Per-node partition knowledge (Lemma 6): every node knows its part's
/// root id and its parent/children within the part's spanning tree.
#[derive(Debug, Clone)]
pub struct PartitionState {
    /// Part root id known at each node.
    pub root: Vec<NodeId>,
    /// Spanning-tree parent (`None` iff the node is its part's root).
    pub parent: Vec<Option<NodeId>>,
}

impl PartitionState {
    /// The singleton partition (each node its own part).
    pub fn singletons(g: &Graph) -> Self {
        PartitionState {
            root: g.nodes().collect(),
            parent: vec![None; g.n()],
        }
    }

    /// Builds the (validated) tree topology of the current partition.
    ///
    /// # Panics
    ///
    /// Panics if the parent pointers are not a valid forest — that would
    /// be a violation of the Lemma 6 invariant, i.e. a bug.
    pub fn tree(&self, g: &Graph) -> TreeTopology {
        TreeTopology::from_parents(g, self.parent.clone())
            .expect("partition spanning trees must remain a valid forest (Lemma 6)")
    }

    /// Number of distinct parts.
    pub fn part_count(&self) -> usize {
        let mut roots: Vec<u32> = self.root.iter().map(|r| r.raw()).collect();
        roots.sort_unstable();
        roots.dedup();
        roots.len()
    }

    /// Total weight (edge count) of the cut between parts.
    pub fn cut_weight(&self, g: &Graph) -> u64 {
        g.edges()
            .filter(|&(u, v)| self.root[u.index()] != self.root[v.index()])
            .count() as u64
    }

    /// Maximum spanning-tree depth over all parts (a proxy for part
    /// diameter the algorithm itself maintains; the true diameter is at
    /// most twice this).
    pub fn max_depth(&self, g: &Graph) -> u32 {
        self.tree(g).height()
    }

    /// Members of each part, keyed by root raw id.
    pub fn members_by_root(&self) -> std::collections::HashMap<u32, Vec<NodeId>> {
        let mut map: std::collections::HashMap<u32, Vec<NodeId>> = std::collections::HashMap::new();
        for (v, r) in self.root.iter().enumerate() {
            map.entry(r.raw()).or_default().push(NodeId::new(v));
        }
        map
    }
}

/// Metrics recorded after each phase (inputs to experiments E4/E5/E8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseMetrics {
    /// Phase index (1-based).
    pub phase: usize,
    /// Inter-part edge weight after the phase.
    pub cut_weight: u64,
    /// Number of parts after the phase.
    pub parts: usize,
    /// Maximum spanning-tree depth after the phase.
    pub max_depth: u32,
    /// Super-rounds the peeling actually used (0 for the randomized
    /// variant).
    pub peel_super_rounds: u32,
}

/// Outcome of Stage I.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Final per-node state.
    pub state: PartitionState,
    /// Nodes that outputs `reject` during Stage I (arboricity evidence).
    /// Non-empty only when the graph's contracted minors exceeded
    /// arboricity α — impossible for planar inputs (Claim 3).
    pub rejected: Vec<NodeId>,
    /// Per-phase metrics.
    pub phases: Vec<PhaseMetrics>,
}

impl Partition {
    /// Whether Stage I completed successfully (Definition 2).
    pub fn completed_successfully(&self) -> bool {
        self.rejected.is_empty()
    }
}

/// Runs the deterministic Stage I partition on `engine`'s graph.
///
/// If the graph is planar this always completes successfully; otherwise
/// some node may reject with arboricity evidence (Claim 3). Rounds and
/// messages accrue on `engine`.
///
/// # Errors
///
/// Returns infrastructure errors only; rejection is reported in the
/// returned [`Partition`].
pub fn run_partition<'g, E: EngineCore<'g>>(
    engine: &mut E,
    cfg: &TesterConfig,
) -> Result<Partition, CoreError> {
    let g = engine.graph();
    let mut state = PartitionState::singletons(g);
    let mut rejected: Vec<NodeId> = Vec::new();
    let mut phases = Vec::new();
    let t = cfg.phases(g.n());

    for phase in 1..=t {
        let tree = state.tree(g);

        // Every node learns its neighbours' current part roots (1 round).
        let neighbor_roots = exchange_roots(engine, &state, cfg.max_rounds)?;
        if !has_boundary(&state, &neighbor_roots) {
            // Every part is already isolated: all remaining phases are
            // status-only no-ops. Charge their cost and stop.
            let per_phase = 2 * (tree.height() as u64) + 4;
            engine.charge_rounds((t - phase + 1) as u64 * per_phase);
            break;
        }

        // Forest-decomposition step (message-level super-rounds).
        let peel = forest::run_forest_decomposition(engine, cfg, &state, &tree, &neighbor_roots)?;
        rejected.extend(peel.rejected.iter().copied());
        if !peel.rejected.is_empty() {
            // Stage I failed (Definition 2): stop partitioning; the
            // rejection verdict stands regardless of the partition.
            phases.push(PhaseMetrics {
                phase,
                cut_weight: state.cut_weight(g),
                parts: state.part_count(),
                max_depth: state.max_depth(g),
                peel_super_rounds: peel.super_rounds_used,
            });
            break;
        }

        // Merging step: heaviest out-edge selection, CHW marking and star
        // contraction.
        merge::run_merge(
            engine,
            cfg,
            &mut state,
            &peel,
            &neighbor_roots,
            merge::Selection::Heaviest,
        )?;

        phases.push(PhaseMetrics {
            phase,
            cut_weight: state.cut_weight(g),
            parts: state.part_count(),
            max_depth: state.max_depth(g),
            peel_super_rounds: peel.super_rounds_used,
        });
    }

    rejected.sort_unstable();
    rejected.dedup();
    Ok(Partition {
        state,
        rejected,
        phases,
    })
}

/// One exchange round: every node learns `(neighbour, neighbour's root)`.
pub(crate) fn exchange_roots<'g, E: EngineCore<'g>>(
    engine: &mut E,
    state: &PartitionState,
    max_rounds: u64,
) -> Result<Vec<Vec<(NodeId, u32)>>, CoreError> {
    let roots = state.root.clone();
    let received = comm::exchange(
        engine,
        move |v, _| Some(Msg::words(&[roots[v.index()].raw() as u64])),
        max_rounds,
    )?;
    Ok(received
        .into_iter()
        .map(|msgs| {
            msgs.into_iter()
                .map(|(from, m)| (from, m.word(0) as u32))
                .collect()
        })
        .collect())
}

fn has_boundary(state: &PartitionState, neighbor_roots: &[Vec<(NodeId, u32)>]) -> bool {
    neighbor_roots
        .iter()
        .enumerate()
        .any(|(v, ns)| ns.iter().any(|&(_, r)| r != state.root[v].raw()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use planartest_graph::generators::planar;
    use planartest_sim::Engine;
    use planartest_sim::SimConfig;

    #[test]
    fn singleton_state() {
        let g = planar::path(4).graph;
        let s = PartitionState::singletons(&g);
        assert_eq!(s.part_count(), 4);
        assert_eq!(s.cut_weight(&g), 3);
        assert_eq!(s.max_depth(&g), 0);
        assert_eq!(s.members_by_root().len(), 4);
    }

    #[test]
    fn partition_on_planar_grid_completes() {
        let c = planar::grid(6, 6);
        let cfg = TesterConfig::new(0.3).with_phases(6);
        let mut engine = Engine::new(&c.graph, SimConfig::default());
        let p = run_partition(&mut engine, &cfg).unwrap();
        assert!(p.completed_successfully());
        // Parts are connected: every node's tree root matches its claimed
        // root.
        let tree = p.state.tree(&c.graph);
        for v in c.graph.nodes() {
            assert_eq!(tree.root_of(v), p.state.root[v.index()]);
        }
        // Weight decreases phase over phase (Claim 1 direction).
        for w in p.phases.windows(2) {
            assert!(w[1].cut_weight <= w[0].cut_weight);
        }
    }

    #[test]
    fn partition_merges_a_path_completely() {
        let c = planar::path(32);
        let cfg = TesterConfig::new(0.1).with_phases(12);
        let mut engine = Engine::new(&c.graph, SimConfig::default());
        let p = run_partition(&mut engine, &cfg).unwrap();
        assert!(p.completed_successfully());
        let last = p.phases.last().unwrap();
        assert_eq!(
            last.cut_weight, 0,
            "a path should fully merge: {:?}",
            p.phases
        );
        assert_eq!(p.state.part_count(), 1);
    }

    #[test]
    fn phase_metrics_depth_bounded_by_4_pow_i() {
        let c = planar::triangulated_grid(7, 7);
        let cfg = TesterConfig::new(0.2).with_phases(5);
        let mut engine = Engine::new(&c.graph, SimConfig::default());
        let p = run_partition(&mut engine, &cfg).unwrap();
        for m in &p.phases {
            // Claim 4: diameter of parts after phase i is < 4^{i+1}; tree
            // depth is a lower bound for diameter so this is implied.
            assert!(
                (m.max_depth as u64) < 4u64.pow(m.phase as u32 + 1),
                "phase {} depth {}",
                m.phase,
                m.max_depth
            );
        }
    }
}
