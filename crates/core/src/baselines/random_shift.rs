//! Random-shift clustering (Miller–Peng–Xu style, as adapted by [13, 14]
//! from Elkin–Neiman [12]): every node draws an exponential shift, and
//! joins the cluster of the node maximising `shift − distance`. With rate
//! `β = Θ(ε)` the clusters have radius `O(log(n)/ε)` w.h.p. and at most
//! `ε·m` edges are cut in expectation.
//!
//! This is the §1.1 alternative Stage I: it replaces the whole
//! forest-decomposition machinery at the cost of an extra `log n` factor
//! in the round complexity (cluster radii are `Θ(log n/ε)` instead of
//! `poly(1/ε)`), and it is what we benchmark ours against in E11, and the
//! substrate for the E10 spanner baseline.

use planartest_graph::{EdgeId, NodeId};
use planartest_sim::bfs::distributed_bfs;
use planartest_sim::EngineCore;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::CoreError;
use crate::partition::PartitionState;

/// Configuration of the random-shift clustering.
#[derive(Debug, Clone, Copy)]
pub struct RandomShiftConfig {
    /// Exponential rate `β` (≈ the target cut fraction `ε`).
    pub beta: f64,
    /// RNG seed (per-node shifts derived deterministically).
    pub seed: u64,
    /// Engine round budget.
    pub max_rounds: u64,
}

impl RandomShiftConfig {
    /// Creates a configuration for cut parameter `beta`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < beta < 1`.
    pub fn new(beta: f64) -> Self {
        assert!(beta > 0.0 && beta < 1.0, "beta must be in (0,1)");
        RandomShiftConfig {
            beta,
            seed: 0x5EED,
            max_rounds: 100_000_000,
        }
    }
}

/// Runs random-shift clustering; returns the partition state (cluster
/// roots + BFS trees).
///
/// Shift draws are node-local; the cluster-assignment flood is emulated
/// with a staggered multi-root BFS whose rounds are charged as
/// `max_shift + cluster radius` (the wall-clock of the real flood), and
/// the per-cluster BFS trees are built message-level.
///
/// # Errors
///
/// Infrastructure errors only.
pub fn random_shift_partition<'g, E: EngineCore<'g>>(
    engine: &mut E,
    cfg: &RandomShiftConfig,
) -> Result<PartitionState, CoreError> {
    let g = engine.graph();
    let n = g.n();
    // Per-node integer shifts ~ geometric (discretised exponential).
    let shifts: Vec<u64> = (0..n)
        .map(|v| {
            let mut rng = shift_rng(cfg.seed, v as u64);
            let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
            (-u.ln() / cfg.beta).floor() as u64
        })
        .collect();
    let max_shift = shifts.iter().copied().max().unwrap_or(0);

    // Cluster assignment: centre(v) maximises shift_u - d(u, v). Computed
    // via a Dijkstra-style sweep on the shifted starts (centralized
    // stand-in for the staggered flood; rounds charged below).
    let mut best: Vec<(i64, u32)> = (0..n).map(|v| (shifts[v] as i64, v as u32)).collect();
    let mut heap: std::collections::BinaryHeap<(i64, u32, u32)> = (0..n as u32)
        .map(|v| (shifts[v as usize] as i64, v, v))
        .collect();
    let mut settled = vec![false; n];
    let mut center = vec![0u32; n];
    while let Some((key, v, c)) = heap.pop() {
        if settled[v as usize] {
            continue;
        }
        settled[v as usize] = true;
        center[v as usize] = c;
        for &(w, _) in g.neighbors(NodeId::from(v)) {
            let wkey = key - 1;
            if !settled[w.index()] && (wkey, c) > best[w.index()] {
                best[w.index()] = (wkey, c);
                heap.push((wkey, w.raw(), c));
            }
        }
    }
    engine.charge_rounds(2 * max_shift + 2);

    // Build per-cluster BFS trees message-level.
    let roots: Vec<NodeId> = (0..n)
        .filter(|&v| center[v] == v as u32)
        .map(NodeId::new)
        .collect();
    let center_c = center.clone();
    let bfs = distributed_bfs(
        engine,
        &roots,
        move |v, r| center_c[v.index()] == r.raw(),
        cfg.max_rounds,
    )?;
    Ok(PartitionState {
        root: center.iter().map(|&c| NodeId::from(c)).collect(),
        parent: bfs.parent,
    })
}

/// Spanner from a random-shift clustering: cluster trees plus all
/// inter-cluster edges (the \[12\]-flavoured baseline for E10).
///
/// # Errors
///
/// Infrastructure errors only.
pub fn shift_spanner<'g, E: EngineCore<'g>>(
    engine: &mut E,
    cfg: &RandomShiftConfig,
) -> Result<Vec<EdgeId>, CoreError> {
    let state = random_shift_partition(engine, cfg)?;
    let g = engine.graph();
    let mut edges = Vec::new();
    for e in g.edge_ids() {
        let (u, v) = g.endpoints(e);
        let cut = state.root[u.index()] != state.root[v.index()];
        let tree = state.parent[u.index()] == Some(v) || state.parent[v.index()] == Some(u);
        if cut || tree {
            edges.push(e);
        }
    }
    Ok(edges)
}

fn shift_rng(seed: u64, node: u64) -> StdRng {
    let mut x = seed ^ node.wrapping_mul(0xA0761D6478BD642F);
    x ^= x >> 31;
    x = x.wrapping_mul(0xE7037ED1A0B428DB);
    x ^= x >> 29;
    StdRng::seed_from_u64(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use planartest_graph::generators::planar;
    use planartest_sim::Engine;
    use planartest_sim::SimConfig;

    #[test]
    fn clustering_covers_graph_with_connected_clusters() {
        let g = planar::grid(10, 10).graph;
        let cfg = RandomShiftConfig::new(0.3);
        let mut engine = Engine::new(&g, SimConfig::default());
        let state = random_shift_partition(&mut engine, &cfg).unwrap();
        // Every node has a centre; trees consistent with membership.
        let tree = state.tree(&g);
        for v in g.nodes() {
            assert_eq!(tree.root_of(v), state.root[v.index()]);
        }
        assert!(state.part_count() >= 1);
        assert!(engine.stats().total_rounds() > 0);
    }

    #[test]
    fn smaller_beta_cuts_fewer_edges() {
        let g = planar::grid(12, 12).graph;
        let cut_at = |beta: f64| {
            let cfg = RandomShiftConfig::new(beta);
            let mut engine = Engine::new(&g, SimConfig::default());
            let state = random_shift_partition(&mut engine, &cfg).unwrap();
            state.cut_weight(&g)
        };
        // Statistical tendency with fixed seeds; chosen to hold here.
        assert!(
            cut_at(0.05) <= cut_at(0.8),
            "low beta should cut fewer edges"
        );
    }

    #[test]
    fn spanner_preserves_connectivity() {
        let g = planar::triangulated_grid(7, 7).graph;
        let cfg = RandomShiftConfig::new(0.3);
        let mut engine = Engine::new(&g, SimConfig::default());
        let edges = shift_spanner(&mut engine, &cfg).unwrap();
        let keep: std::collections::HashSet<u32> = edges.iter().map(|e| e.raw()).collect();
        let (sub, _) = g.edge_subgraph(|e| keep.contains(&e.raw()));
        assert!(planartest_graph::algo::components::is_connected(&sub));
        assert!(edges.len() <= g.m());
    }
}
