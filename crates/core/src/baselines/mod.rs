//! Baselines the paper compares against (§1.1–§1.2): the random-shift
//! clustering alternative to Stage I (giving the `O(log² n · poly(1/ε))`
//! tester noted after Stage II's description, via [12–14]), and the
//! Elkin–Neiman-style spanner built from it.

mod random_shift;

pub use random_shift::{random_shift_partition, shift_spanner, RandomShiftConfig};
