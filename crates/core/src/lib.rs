//! Distributed property testing of planarity in the CONGEST model.
//!
//! This crate implements the algorithm of **Levi, Medina and Ron,
//! "Property Testing of Planarity in the CONGEST model" (PODC 2018)**:
//! a one-sided-error distributed tester running in
//! `O(log n · poly(1/ε))` rounds. If the network graph is planar every
//! node outputs *accept*; if it is `ε`-far from planar (more than `ε·m`
//! edges must be removed to make it planar), some node outputs *reject*
//! with probability `1 − 1/poly(n)`.
//!
//! The tester has two stages:
//!
//! * **Stage I** ([`partition`]) — a deterministic partition of the nodes
//!   into connected parts of small diameter with few edges between parts,
//!   built from `Θ(log 1/ε)` phases of Barenboim–Elkin forest
//!   decomposition (which *rejects* when it finds arboricity evidence)
//!   plus Czygrinow–Hańćkowiak–Wawrzyniak merging.
//! * **Stage II** ([`stage2`]) — per-part planarity testing: BFS trees,
//!   the `m ≤ 3n − 6` check, a combinatorial embedding, tree labels, and
//!   sampling of non-tree edges to catch *violating* (interleaving) edges.
//!
//! The crate also provides the paper's §4 companions: the randomized
//! minor-free [`partition::randomized`] partition (Theorem 4), testers for
//! cycle-freeness and bipartiteness plus spanners on minor-free graphs
//! ([`applications`], Corollaries 16–17), baselines ([`baselines`]), the
//! `Ω(log n)` lower-bound construction ([`lowerbound`], Theorem 2), and
//! centralized audit [`oracle`]s.
//!
//! # Example
//!
//! ```
//! use planartest_core::{PlanarityTester, TesterConfig};
//! use planartest_graph::generators::planar;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let g = planar::triangulated_grid(8, 8);
//! let cfg = TesterConfig::new(0.1).with_seed(7);
//! let outcome = PlanarityTester::new(cfg).run(&g.graph)?;
//! assert!(outcome.accepted()); // planar graphs are always accepted
//! # let _ = &mut rng;
//! # Ok::<(), planartest_core::CoreError>(())
//! ```

pub mod applications;
pub mod baselines;
mod comm;
mod config;
mod error;
pub mod lowerbound;
pub mod oracle;
pub mod partition;
pub mod stage2;
mod tester;

pub use crate::config::{EmbeddingMode, TesterConfig};
pub use crate::error::CoreError;
pub use crate::tester::{PlanarityTester, RejectReason, TestOutcome};
