//! The full planarity tester (Theorem 1): Stage I then Stage II.

use planartest_graph::{Graph, NodeId};
use planartest_sim::{Backend, Engine, EngineCore, ParallelEngine, SimConfig, SimStats};

use crate::config::TesterConfig;
use crate::error::CoreError;
use crate::partition::{self, PhaseMetrics};
use crate::stage2::{self, PartReport};

/// Why a node output `reject`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// Stage I: the forest-decomposition peeling left the node's part
    /// active — evidence of arboricity > 3 in a minor of the graph.
    ArboricityEvidence,
    /// Stage II: the part has more than `3n − 6` edges.
    EulerBound,
    /// Stage II (strict mode): the embedding step certified the part
    /// non-planar.
    EmbeddingFailed,
    /// Stage II: an assigned non-tree edge interleaves a sampled one
    /// (Definition 7).
    ViolatingEdge,
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            RejectReason::ArboricityEvidence => "arboricity evidence (stage I)",
            RejectReason::EulerBound => "m > 3n-6 in a part",
            RejectReason::EmbeddingFailed => "embedding failure",
            RejectReason::ViolatingEdge => "violating non-tree edge",
        };
        f.write_str(s)
    }
}

/// The verdict and full telemetry of one tester execution.
#[derive(Debug, Clone)]
pub struct TestOutcome {
    /// Nodes that output `reject`, with reasons (empty = all accept).
    pub rejections: Vec<(NodeId, RejectReason)>,
    /// Simulation statistics (rounds include charged substitutions).
    pub stats: SimStats,
    /// Stage-I per-phase metrics.
    pub phases: Vec<PhaseMetrics>,
    /// Stage-II per-part reports (empty if Stage I already rejected).
    pub parts: Vec<PartReport>,
    /// Nodes that witnessed a Definition 7 violation (telemetry in the
    /// sound modes; rejection evidence only in the paper-faithful mode —
    /// see the Claim 10 refutation in `EXPERIMENTS.md`).
    pub violation_witnesses: Vec<NodeId>,
}

impl TestOutcome {
    /// Whether every node output `accept`.
    pub fn accepted(&self) -> bool {
        self.rejections.is_empty()
    }

    /// Total rounds (simulated + charged).
    pub fn rounds(&self) -> u64 {
        self.stats.total_rounds()
    }
}

/// The distributed one-sided-error planarity tester of Theorem 1.
///
/// # Example
///
/// ```
/// use planartest_core::{PlanarityTester, TesterConfig};
/// use planartest_graph::generators::nonplanar;
///
/// // A chain of K5s is certified far from planar: some node rejects.
/// let far = nonplanar::k5_chain(8);
/// let out = PlanarityTester::new(TesterConfig::new(0.05)).run(&far.graph)?;
/// assert!(!out.accepted());
/// # Ok::<(), planartest_core::CoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PlanarityTester {
    cfg: TesterConfig,
    sim: SimConfig,
}

impl PlanarityTester {
    /// Creates a tester with the given configuration.
    pub fn new(cfg: TesterConfig) -> Self {
        PlanarityTester {
            cfg,
            sim: SimConfig::default(),
        }
    }

    /// Overrides the simulated network's bandwidth configuration.
    pub fn with_sim_config(mut self, sim: SimConfig) -> Self {
        self.sim = sim;
        self
    }

    /// Selects the execution backend (serial or worker-pool). Both
    /// produce identical outcomes for the same seed; see
    /// [`planartest_sim::runtime`].
    #[must_use]
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.sim.backend = backend;
        self
    }

    /// The configuration.
    pub fn config(&self) -> &TesterConfig {
        &self.cfg
    }

    /// Runs the two-stage tester on `g` (a batch of one instance with
    /// the configured seed — see [`PlanarityTester::run_many`]).
    ///
    /// Completeness: if `g` is planar, the outcome always accepts.
    /// Soundness: if `g` is `ε`-far from planar, some node rejects with
    /// probability `1 − 1/poly(n)` over the Stage-II sampling.
    ///
    /// # Errors
    ///
    /// Infrastructure errors only (model violations, sample overflow).
    pub fn run(&self, g: &Graph) -> Result<TestOutcome, CoreError> {
        let mut outcomes = self.run_many(g, std::slice::from_ref(&self.cfg.seed))?;
        Ok(outcomes.pop().expect("one instance"))
    }

    /// Serves a whole batch of Monte-Carlo queries on `g` — one
    /// independent tester instance per seed — through a single
    /// instance-multiplexed pass.
    ///
    /// The Stage-I partition and the seed-independent Stage-II prefix
    /// (BFS trees, counting, embedding, label distribution/exchange)
    /// run **once**; every instance is credited their full round cost.
    /// The seed-dependent Stage-II sample streams execute as lockstep
    /// lanes of the batch engine
    /// ([`planartest_sim::runtime::batch`]). Each returned
    /// [`TestOutcome`] — verdict, witnesses *and* statistics — is
    /// bit-for-bit identical to what [`PlanarityTester::run`] with that
    /// seed produces; only the wall-clock collapses.
    ///
    /// # Errors
    ///
    /// Infrastructure errors only; fails fast if any instance errs
    /// (e.g. a `1/poly(n)` sample overflow — rerun with other seeds).
    pub fn run_many(&self, g: &Graph, seeds: &[u64]) -> Result<Vec<TestOutcome>, CoreError> {
        match self.sim.backend {
            Backend::Serial => self.run_many_on(&mut Engine::new(g, self.sim), seeds),
            // `Auto` rides the parallel engine, which resolves the
            // worker count per run from the backend's work threshold.
            Backend::Parallel { .. } | Backend::Auto => {
                self.run_many_on(&mut ParallelEngine::new(g, self.sim), seeds)
            }
        }
    }

    /// Runs the two stages for every seed on an already-constructed
    /// engine (any backend).
    fn run_many_on<'g, E: EngineCore<'g>>(
        &self,
        engine: &mut E,
        seeds: &[u64],
    ) -> Result<Vec<TestOutcome>, CoreError> {
        if seeds.is_empty() {
            return Ok(Vec::new());
        }
        // Stage I is deterministic and seed-independent: one run serves
        // the whole batch, each instance paying its cost in full.
        let partition = partition::run_partition(engine, &self.cfg)?;
        let stage1_stats = *engine.stats();
        let stage1_rejections: Vec<(NodeId, RejectReason)> = partition
            .rejected
            .iter()
            .map(|&v| (v, RejectReason::ArboricityEvidence))
            .collect();
        if !stage1_rejections.is_empty() {
            // Stage II never runs: every instance observes the same
            // Stage-I evidence.
            return Ok(seeds
                .iter()
                .map(|_| TestOutcome {
                    rejections: stage1_rejections.clone(),
                    stats: stage1_stats,
                    phases: partition.phases.clone(),
                    parts: Vec::new(),
                    violation_witnesses: Vec::new(),
                })
                .collect());
        }
        let batch = stage2::run_stage2_many(engine, &self.cfg, seeds, &partition.state)?;
        Ok(batch
            .outcomes
            .into_iter()
            .zip(batch.stats)
            .map(|(s2, s2_stats)| {
                let mut stats = stage1_stats;
                stats.merge(&s2_stats);
                TestOutcome {
                    rejections: s2.rejections,
                    stats,
                    phases: partition.phases.clone(),
                    parts: s2.parts,
                    violation_witnesses: s2.violation_witnesses,
                }
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EmbeddingMode;
    use planartest_graph::generators::{nonplanar, planar};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quick_cfg(eps: f64) -> TesterConfig {
        // Modest phase count keeps unit tests fast; integration tests
        // exercise the derived default.
        TesterConfig::new(eps).with_phases(6)
    }

    #[test]
    fn completeness_on_planar_families() {
        let mut rng = StdRng::seed_from_u64(3);
        let graphs = vec![
            planar::grid(6, 6).graph,
            planar::triangulated_grid(5, 6).graph,
            planar::apollonian(50, &mut rng).graph,
            planar::random_planar(60, 0.6, &mut rng).graph,
            planar::random_tree(64, &mut rng).graph,
            planar::cycle(30).graph,
        ];
        for g in graphs {
            let out = PlanarityTester::new(quick_cfg(0.15)).run(&g).unwrap();
            assert!(
                out.accepted(),
                "planar graph rejected: {:?}",
                out.rejections
            );
            assert!(out.rounds() > 0);
        }
    }

    #[test]
    fn soundness_on_k5_chain() {
        let far = nonplanar::k5_chain(10);
        let out = PlanarityTester::new(quick_cfg(0.05))
            .run(&far.graph)
            .unwrap();
        assert!(!out.accepted());
    }

    #[test]
    fn paper_mode_rejects_far_graphs_via_violations() {
        let far = nonplanar::complete_bipartite(3, 3);
        let cfg = quick_cfg(0.1).with_embedding(EmbeddingMode::Demoucron);
        let out = PlanarityTester::new(cfg).run(&far.graph).unwrap();
        assert!(!out.accepted());
        assert!(!out.violation_witnesses.is_empty());
    }

    #[test]
    fn soundness_on_planar_plus_chords() {
        let mut rng = StdRng::seed_from_u64(4);
        let far = nonplanar::planar_plus_chords(80, 60, &mut rng);
        let out = PlanarityTester::new(quick_cfg(0.1))
            .run(&far.graph)
            .unwrap();
        assert!(!out.accepted(), "{:?}", far.name);
    }

    #[test]
    fn dense_graph_rejected_in_stage1_or_2() {
        let far = nonplanar::complete(16);
        let out = PlanarityTester::new(quick_cfg(0.1))
            .run(&far.graph)
            .unwrap();
        assert!(!out.accepted());
        assert!(out
            .rejections
            .iter()
            .any(|&(_, r)| r == RejectReason::ArboricityEvidence));
    }

    #[test]
    fn hint_mode_accepts_planar() {
        let mut rng = StdRng::seed_from_u64(5);
        let (c, faces) = planar::apollonian_with_faces(80, &mut rng);
        let faces: Vec<Vec<usize>> = faces.iter().map(|f| f.to_vec()).collect();
        let rot = planartest_embed::hints::rotation_from_faces(&c.graph, &faces).unwrap();
        let cfg = quick_cfg(0.15).with_embedding(EmbeddingMode::Hint(rot));
        let out = PlanarityTester::new(cfg).run(&c.graph).unwrap();
        assert!(out.accepted(), "{:?}", out.rejections);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = planar::grid(5, 5).graph;
        let a = PlanarityTester::new(quick_cfg(0.2)).run(&g).unwrap();
        let b = PlanarityTester::new(quick_cfg(0.2)).run(&g).unwrap();
        assert_eq!(a.rounds(), b.rounds());
        assert_eq!(a.stats.messages, b.stats.messages);
    }

    #[test]
    fn parallel_backend_matches_serial() {
        let mut rng = StdRng::seed_from_u64(9);
        let graphs = vec![
            planar::triangulated_grid(6, 6).graph,
            nonplanar::k5_chain(6).graph,
            planar::random_planar(50, 0.7, &mut rng).graph,
        ];
        for g in graphs {
            let serial = PlanarityTester::new(quick_cfg(0.1)).run(&g).unwrap();
            for threads in [2, 4] {
                let par = PlanarityTester::new(quick_cfg(0.1))
                    .with_backend(Backend::Parallel { threads })
                    .run(&g)
                    .unwrap();
                assert_eq!(par.rejections, serial.rejections, "threads={threads}");
                assert_eq!(par.stats, serial.stats, "threads={threads}");
                assert_eq!(par.violation_witnesses, serial.violation_witnesses);
            }
        }
    }

    #[test]
    fn run_many_matches_sequential_runs() {
        // Batched Monte-Carlo service must be bit-for-bit the sequential
        // per-seed runs: verdicts, witnesses, per-part sample counts and
        // the full statistics ledger.
        let mut rng = StdRng::seed_from_u64(7);
        let graphs = vec![
            planar::triangulated_grid(6, 6).graph,
            planar::random_planar(50, 0.7, &mut rng).graph,
            nonplanar::k5_chain(6).graph,
        ];
        let seeds: Vec<u64> = (0..5).collect();
        for g in &graphs {
            let batched = PlanarityTester::new(quick_cfg(0.1))
                .run_many(g, &seeds)
                .unwrap();
            assert_eq!(batched.len(), seeds.len());
            for (&seed, out) in seeds.iter().zip(&batched) {
                let solo = PlanarityTester::new(quick_cfg(0.1).with_seed(seed))
                    .run(g)
                    .unwrap();
                assert_eq!(out.rejections, solo.rejections, "seed {seed}");
                assert_eq!(out.stats, solo.stats, "seed {seed}");
                assert_eq!(
                    out.violation_witnesses, solo.violation_witnesses,
                    "seed {seed}"
                );
                let sampled: Vec<usize> = out.parts.iter().map(|p| p.sampled).collect();
                let solo_sampled: Vec<usize> = solo.parts.iter().map(|p| p.sampled).collect();
                assert_eq!(sampled, solo_sampled, "seed {seed}");
            }
        }
    }

    #[test]
    fn run_many_matches_sequential_in_paper_mode() {
        // In the paper-faithful mode the verdict itself depends on the
        // seed (violating edges reject), so per-instance divergence is
        // observable — the batch must reproduce it exactly.
        let far = nonplanar::complete_bipartite(3, 3);
        let seeds: Vec<u64> = (0..6).collect();
        let cfg = quick_cfg(0.1).with_embedding(EmbeddingMode::Demoucron);
        let batched = PlanarityTester::new(cfg.clone())
            .run_many(&far.graph, &seeds)
            .unwrap();
        for (&seed, out) in seeds.iter().zip(&batched) {
            let solo = PlanarityTester::new(cfg.clone().with_seed(seed))
                .run(&far.graph)
                .unwrap();
            assert_eq!(out.rejections, solo.rejections, "seed {seed}");
            assert_eq!(out.stats, solo.stats, "seed {seed}");
        }
    }

    #[test]
    fn run_many_on_stage1_rejection_and_empty_seeds() {
        let far = nonplanar::complete(16);
        let tester = PlanarityTester::new(quick_cfg(0.1));
        assert!(tester.run_many(&far.graph, &[]).unwrap().is_empty());
        let outs = tester.run_many(&far.graph, &[1, 2, 3]).unwrap();
        let solo = tester.run(&far.graph).unwrap();
        for out in &outs {
            // Stage I rejects before any sampling: seeds are irrelevant.
            assert_eq!(out.rejections, solo.rejections);
            assert_eq!(out.stats, solo.stats);
        }
    }

    #[test]
    fn outcome_accessors() {
        let g = planar::path(8).graph;
        let out = PlanarityTester::new(quick_cfg(0.3)).run(&g).unwrap();
        assert!(out.accepted());
        assert!(!out.phases.is_empty() || g.m() == 0);
        assert_eq!(
            RejectReason::ViolatingEdge.to_string(),
            "violating non-tree edge"
        );
    }
}
