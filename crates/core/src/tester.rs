//! The full planarity tester (Theorem 1): Stage I then Stage II.

use planartest_graph::{Graph, NodeId};
use planartest_sim::{Backend, Engine, EngineCore, ParallelEngine, SimConfig, SimStats};

use crate::config::TesterConfig;
use crate::error::CoreError;
use crate::partition::{self, PhaseMetrics};
use crate::stage2::{self, PartReport};

/// Why a node output `reject`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// Stage I: the forest-decomposition peeling left the node's part
    /// active — evidence of arboricity > 3 in a minor of the graph.
    ArboricityEvidence,
    /// Stage II: the part has more than `3n − 6` edges.
    EulerBound,
    /// Stage II (strict mode): the embedding step certified the part
    /// non-planar.
    EmbeddingFailed,
    /// Stage II: an assigned non-tree edge interleaves a sampled one
    /// (Definition 7).
    ViolatingEdge,
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            RejectReason::ArboricityEvidence => "arboricity evidence (stage I)",
            RejectReason::EulerBound => "m > 3n-6 in a part",
            RejectReason::EmbeddingFailed => "embedding failure",
            RejectReason::ViolatingEdge => "violating non-tree edge",
        };
        f.write_str(s)
    }
}

/// The verdict and full telemetry of one tester execution.
#[derive(Debug, Clone)]
pub struct TestOutcome {
    /// Nodes that output `reject`, with reasons (empty = all accept).
    pub rejections: Vec<(NodeId, RejectReason)>,
    /// Simulation statistics (rounds include charged substitutions).
    pub stats: SimStats,
    /// Stage-I per-phase metrics.
    pub phases: Vec<PhaseMetrics>,
    /// Stage-II per-part reports (empty if Stage I already rejected).
    pub parts: Vec<PartReport>,
    /// Nodes that witnessed a Definition 7 violation (telemetry in the
    /// sound modes; rejection evidence only in the paper-faithful mode —
    /// see the Claim 10 refutation in `EXPERIMENTS.md`).
    pub violation_witnesses: Vec<NodeId>,
}

impl TestOutcome {
    /// Whether every node output `accept`.
    pub fn accepted(&self) -> bool {
        self.rejections.is_empty()
    }

    /// Total rounds (simulated + charged).
    pub fn rounds(&self) -> u64 {
        self.stats.total_rounds()
    }
}

/// The distributed one-sided-error planarity tester of Theorem 1.
///
/// # Example
///
/// ```
/// use planartest_core::{PlanarityTester, TesterConfig};
/// use planartest_graph::generators::nonplanar;
///
/// // A chain of K5s is certified far from planar: some node rejects.
/// let far = nonplanar::k5_chain(8);
/// let out = PlanarityTester::new(TesterConfig::new(0.05)).run(&far.graph)?;
/// assert!(!out.accepted());
/// # Ok::<(), planartest_core::CoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PlanarityTester {
    cfg: TesterConfig,
    sim: SimConfig,
}

impl PlanarityTester {
    /// Creates a tester with the given configuration.
    pub fn new(cfg: TesterConfig) -> Self {
        PlanarityTester {
            cfg,
            sim: SimConfig::default(),
        }
    }

    /// Overrides the simulated network's bandwidth configuration.
    pub fn with_sim_config(mut self, sim: SimConfig) -> Self {
        self.sim = sim;
        self
    }

    /// Selects the execution backend (serial or worker-pool). Both
    /// produce identical outcomes for the same seed; see
    /// [`planartest_sim::runtime`].
    #[must_use]
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.sim.backend = backend;
        self
    }

    /// The configuration.
    pub fn config(&self) -> &TesterConfig {
        &self.cfg
    }

    /// Runs the two-stage tester on `g`.
    ///
    /// Completeness: if `g` is planar, the outcome always accepts.
    /// Soundness: if `g` is `ε`-far from planar, some node rejects with
    /// probability `1 − 1/poly(n)` over the Stage-II sampling.
    ///
    /// # Errors
    ///
    /// Infrastructure errors only (model violations, sample overflow).
    pub fn run(&self, g: &Graph) -> Result<TestOutcome, CoreError> {
        match self.sim.backend {
            Backend::Serial => self.run_on(&mut Engine::new(g, self.sim)),
            // `Auto` rides the parallel engine, which resolves the
            // worker count per run from the backend's work threshold.
            Backend::Parallel { .. } | Backend::Auto => {
                self.run_on(&mut ParallelEngine::new(g, self.sim))
            }
        }
    }

    /// Runs the two stages on an already-constructed engine (any
    /// backend).
    fn run_on<'g, E: EngineCore<'g>>(&self, engine: &mut E) -> Result<TestOutcome, CoreError> {
        let partition = partition::run_partition(engine, &self.cfg)?;
        let mut rejections: Vec<(NodeId, RejectReason)> = partition
            .rejected
            .iter()
            .map(|&v| (v, RejectReason::ArboricityEvidence))
            .collect();
        let mut parts = Vec::new();
        let mut violation_witnesses = Vec::new();
        if rejections.is_empty() {
            let s2 = stage2::run_stage2(engine, &self.cfg, &partition.state)?;
            rejections.extend(s2.rejections);
            parts = s2.parts;
            violation_witnesses = s2.violation_witnesses;
        }
        Ok(TestOutcome {
            rejections,
            stats: *engine.stats(),
            phases: partition.phases,
            parts,
            violation_witnesses,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EmbeddingMode;
    use planartest_graph::generators::{nonplanar, planar};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quick_cfg(eps: f64) -> TesterConfig {
        // Modest phase count keeps unit tests fast; integration tests
        // exercise the derived default.
        TesterConfig::new(eps).with_phases(6)
    }

    #[test]
    fn completeness_on_planar_families() {
        let mut rng = StdRng::seed_from_u64(3);
        let graphs = vec![
            planar::grid(6, 6).graph,
            planar::triangulated_grid(5, 6).graph,
            planar::apollonian(50, &mut rng).graph,
            planar::random_planar(60, 0.6, &mut rng).graph,
            planar::random_tree(64, &mut rng).graph,
            planar::cycle(30).graph,
        ];
        for g in graphs {
            let out = PlanarityTester::new(quick_cfg(0.15)).run(&g).unwrap();
            assert!(
                out.accepted(),
                "planar graph rejected: {:?}",
                out.rejections
            );
            assert!(out.rounds() > 0);
        }
    }

    #[test]
    fn soundness_on_k5_chain() {
        let far = nonplanar::k5_chain(10);
        let out = PlanarityTester::new(quick_cfg(0.05))
            .run(&far.graph)
            .unwrap();
        assert!(!out.accepted());
    }

    #[test]
    fn paper_mode_rejects_far_graphs_via_violations() {
        let far = nonplanar::complete_bipartite(3, 3);
        let cfg = quick_cfg(0.1).with_embedding(EmbeddingMode::Demoucron);
        let out = PlanarityTester::new(cfg).run(&far.graph).unwrap();
        assert!(!out.accepted());
        assert!(!out.violation_witnesses.is_empty());
    }

    #[test]
    fn soundness_on_planar_plus_chords() {
        let mut rng = StdRng::seed_from_u64(4);
        let far = nonplanar::planar_plus_chords(80, 60, &mut rng);
        let out = PlanarityTester::new(quick_cfg(0.1))
            .run(&far.graph)
            .unwrap();
        assert!(!out.accepted(), "{:?}", far.name);
    }

    #[test]
    fn dense_graph_rejected_in_stage1_or_2() {
        let far = nonplanar::complete(16);
        let out = PlanarityTester::new(quick_cfg(0.1))
            .run(&far.graph)
            .unwrap();
        assert!(!out.accepted());
        assert!(out
            .rejections
            .iter()
            .any(|&(_, r)| r == RejectReason::ArboricityEvidence));
    }

    #[test]
    fn hint_mode_accepts_planar() {
        let mut rng = StdRng::seed_from_u64(5);
        let (c, faces) = planar::apollonian_with_faces(80, &mut rng);
        let faces: Vec<Vec<usize>> = faces.iter().map(|f| f.to_vec()).collect();
        let rot = planartest_embed::hints::rotation_from_faces(&c.graph, &faces).unwrap();
        let cfg = quick_cfg(0.15).with_embedding(EmbeddingMode::Hint(rot));
        let out = PlanarityTester::new(cfg).run(&c.graph).unwrap();
        assert!(out.accepted(), "{:?}", out.rejections);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = planar::grid(5, 5).graph;
        let a = PlanarityTester::new(quick_cfg(0.2)).run(&g).unwrap();
        let b = PlanarityTester::new(quick_cfg(0.2)).run(&g).unwrap();
        assert_eq!(a.rounds(), b.rounds());
        assert_eq!(a.stats.messages, b.stats.messages);
    }

    #[test]
    fn parallel_backend_matches_serial() {
        let mut rng = StdRng::seed_from_u64(9);
        let graphs = vec![
            planar::triangulated_grid(6, 6).graph,
            nonplanar::k5_chain(6).graph,
            planar::random_planar(50, 0.7, &mut rng).graph,
        ];
        for g in graphs {
            let serial = PlanarityTester::new(quick_cfg(0.1)).run(&g).unwrap();
            for threads in [2, 4] {
                let par = PlanarityTester::new(quick_cfg(0.1))
                    .with_backend(Backend::Parallel { threads })
                    .run(&g)
                    .unwrap();
                assert_eq!(par.rejections, serial.rejections, "threads={threads}");
                assert_eq!(par.stats, serial.stats, "threads={threads}");
                assert_eq!(par.violation_witnesses, serial.violation_witnesses);
            }
        }
    }

    #[test]
    fn outcome_accessors() {
        let g = planar::path(8).graph;
        let out = PlanarityTester::new(quick_cfg(0.3)).run(&g).unwrap();
        assert!(out.accepted());
        assert!(!out.phases.is_empty() || g.m() == 0);
        assert_eq!(
            RejectReason::ViolatingEdge.to_string(),
            "violating non-tree edge"
        );
    }
}
