//! Centralized audit oracles: exact violating-edge counts (Claims 8/10,
//! Corollary 9) and partition-quality auditing. Test/measurement code —
//! never consulted by the distributed algorithms.

use planartest_embed::RotationSystem;
use planartest_graph::algo::bfs::BfsTree;
use planartest_graph::{Graph, NodeId};

use crate::partition::Partition;
use crate::stage2::labels::{Label, LabeledEdge};

/// Labels every node of `root`'s component from a BFS tree and the
/// rotation's child ordering (the Stage II labelling, computed centrally).
pub fn label_nodes(g: &Graph, rot: &RotationSystem, root: NodeId) -> Vec<Option<Label>> {
    let bfs = BfsTree::build(g, root);
    let mut labels: Vec<Option<Label>> = vec![None; g.n()];
    labels[root.index()] = Some(Label::root());
    for &v in bfs.order() {
        let vl = labels[v.index()]
            .clone()
            .expect("BFS order labels parents first");
        let order = rot.order_at(v);
        if order.is_empty() {
            continue;
        }
        let start = match bfs.parent_edge(v) {
            Some(pe) => order
                .iter()
                .position(|&e| e == pe)
                .map(|i| i + 1)
                .unwrap_or(0),
            None => 0,
        };
        let mut digit = 1u32;
        for k in 0..order.len() {
            let e = order[(start + k) % order.len()];
            let w = g.other_endpoint(e, v);
            if bfs.parent(w) == Some(v) && bfs.parent_edge(w) == Some(e) {
                labels[w.index()] = Some(vl.child(digit));
                digit += 1;
            }
        }
    }
    labels
}

/// The labelled intervals of all non-tree edges of the BFS tree at `root`
/// (restricted to `root`'s component).
pub fn non_tree_intervals(g: &Graph, rot: &RotationSystem, root: NodeId) -> Vec<LabeledEdge> {
    let bfs = BfsTree::build(g, root);
    let labels = label_nodes(g, rot, root);
    let mut out = Vec::new();
    for e in g.edge_ids() {
        let (u, v) = g.endpoints(e);
        if !bfs.reached(u) || !bfs.reached(v) || bfs.is_tree_edge(g, e) {
            continue;
        }
        let (lu, lv) = (
            labels[u.index()].clone().expect("reached"),
            labels[v.index()].clone().expect("reached"),
        );
        out.push(LabeledEdge::new(lu, lv));
    }
    out
}

/// Counts the *violating* non-tree edges (Definition 7): intervals that
/// strictly interleave at least one other interval. `O(k log k)` via rank
/// compression plus sparse-table range max/min.
///
/// Claim 10 predicts 0 for a planar graph with a verified embedding;
/// Corollary 9 predicts `≥ γ·m` for a `γ`-far graph.
pub fn count_violating_edges(intervals: &[LabeledEdge]) -> usize {
    let k = intervals.len();
    if k < 2 {
        return 0;
    }
    // Rank-compress endpoint labels (shared endpoints share ranks, which
    // the strict comparisons below handle correctly).
    let mut all: Vec<&Label> = Vec::with_capacity(2 * k);
    for iv in intervals {
        all.push(&iv.lo);
        all.push(&iv.hi);
    }
    all.sort_by(|a, b| a.lex_cmp(b));
    all.dedup_by(|a, b| a.lex_cmp(b) == std::cmp::Ordering::Equal);
    let rank = |l: &Label| -> usize {
        all.binary_search_by(|p| p.lex_cmp(l))
            .expect("endpoint inserted")
    };
    let m = all.len();
    let ivs: Vec<(usize, usize)> = intervals
        .iter()
        .map(|iv| (rank(&iv.lo), rank(&iv.hi)))
        .collect();

    // max_b[p] = largest right endpoint among intervals opening at p;
    // min_a[p] = smallest left endpoint among intervals closing at p.
    let mut max_b = vec![i64::MIN; m];
    let mut min_a = vec![i64::MAX; m];
    for &(a, b) in &ivs {
        max_b[a] = max_b[a].max(b as i64);
        min_a[b] = min_a[b].min(a as i64);
    }
    let st_max = SparseTable::new(&max_b, true);
    let st_min = SparseTable::new(&min_a, false);

    // Interval (a, b) is violating iff
    //   ∃ j: a < a_j < b < b_j  (some interval opens inside and closes
    //                            after) — range-max of b over (a, b), or
    //   ∃ j: a_j < a < b_j < b  (symmetric) — range-min of a over (a, b).
    let mut count = 0;
    for &(a, b) in &ivs {
        if b - a < 2 {
            continue; // nothing strictly inside
        }
        let crosses =
            st_max.query(a + 1, b - 1) > b as i64 || st_min.query(a + 1, b - 1) < a as i64;
        if crosses {
            count += 1;
        }
    }
    count
}

/// Quadratic reference implementation of [`count_violating_edges`] (used
/// by tests to validate the sweep).
pub fn count_violating_edges_naive(intervals: &[LabeledEdge]) -> usize {
    intervals
        .iter()
        .filter(|a| intervals.iter().any(|b| a.intersects(b)))
        .count()
}

/// Audit of a Stage-I partition against the paper's guarantees.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionAudit {
    /// Every part induces a connected subgraph.
    pub parts_connected: bool,
    /// Number of parts.
    pub parts: usize,
    /// Edges between parts.
    pub cut_edges: u64,
    /// Cut fraction `cut/m` (0 if `m = 0`).
    pub cut_fraction: f64,
    /// Maximum part diameter (exact, via per-part all-pairs BFS).
    pub max_diameter: u32,
}

/// Audits a partition: connectivity, cut size and exact part diameters.
pub fn audit_partition(g: &Graph, p: &Partition) -> PartitionAudit {
    let members = p.state.members_by_root();
    let mut connected = true;
    let mut max_diam = 0;
    for (&root, mem) in &members {
        let (sub, _) = g.induced_subgraph(|v| p.state.root[v.index()].raw() == root);
        let cc = planartest_graph::algo::components::Components::build(&sub);
        if !cc.is_connected() {
            connected = false;
        } else if !mem.is_empty() {
            max_diam = max_diam.max(planartest_graph::algo::bfs::component_diameter(
                &sub,
                NodeId::new(0),
            ));
        }
    }
    let cut = p.state.cut_weight(g);
    PartitionAudit {
        parts_connected: connected,
        parts: members.len(),
        cut_edges: cut,
        cut_fraction: if g.m() == 0 {
            0.0
        } else {
            cut as f64 / g.m() as f64
        },
        max_diameter: max_diam,
    }
}

struct SparseTable {
    /// `table[j][i]` = extreme of `data[i..i + 2^j]`.
    table: Vec<Vec<i64>>,
    is_max: bool,
}

impl SparseTable {
    fn new(data: &[i64], is_max: bool) -> Self {
        let n = data.len();
        let levels = (usize::BITS - n.leading_zeros()) as usize;
        let mut table = vec![data.to_vec()];
        for j in 1..levels.max(1) {
            let half = 1usize << (j - 1);
            let prev = &table[j - 1];
            let mut row = Vec::with_capacity(n.saturating_sub((1 << j) - 1));
            for i in 0..=n.saturating_sub(1 << j) {
                let (x, y) = (prev[i], prev[i + half]);
                row.push(if is_max { x.max(y) } else { x.min(y) });
            }
            table.push(row);
        }
        SparseTable { table, is_max }
    }

    /// Extreme over the inclusive range `[lo, hi]` (identity on empty).
    fn query(&self, lo: usize, hi: usize) -> i64 {
        if lo > hi {
            return if self.is_max { i64::MIN } else { i64::MAX };
        }
        let len = hi - lo + 1;
        let j = (usize::BITS - 1 - len.leading_zeros()) as usize;
        let x = self.table[j][lo];
        let y = self.table[j][hi + 1 - (1 << j)];
        if self.is_max {
            x.max(y)
        } else {
            x.min(y)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use planartest_embed::demoucron::check_planarity;
    use planartest_graph::generators::{nonplanar, planar};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn l(d: &[u32]) -> Label {
        Label(d.to_vec())
    }

    #[test]
    fn sweep_matches_naive_on_random_intervals() {
        let mut rng = StdRng::seed_from_u64(99);
        use rand::Rng;
        for _ in 0..50 {
            let k = rng.random_range(2..40);
            let intervals: Vec<LabeledEdge> = (0..k)
                .map(|_| {
                    let a = rng.random_range(0..30u32);
                    let mut b = rng.random_range(0..30u32);
                    if a == b {
                        b = a + 1;
                    }
                    LabeledEdge::new(l(&[a]), l(&[b]))
                })
                .collect();
            assert_eq!(
                count_violating_edges(&intervals),
                count_violating_edges_naive(&intervals),
                "{intervals:?}"
            );
        }
    }

    /// **Claim 10 refutation.** The paper asserts that a planar part with
    /// an embedding-consistent labelling has no violating edges. Our
    /// reproduction found a 7-node planar counterexample (see
    /// `EXPERIMENTS.md` E6): with BFS parent 1 for the vertex stacked
    /// into face {1,2,5}, the pairs (6,2)×(1,5) and (6,5)×(1,2) cannot
    /// both be non-interleaving — one needs ℓ(5)<ℓ(2), the other the
    /// reverse — so *every* labelling of this planar graph has a
    /// violating edge. This matches book-embedding theory: the label
    /// order is a 2-page spine, which non-subhamiltonian planar graphs
    /// lack. The sound tester modes therefore reject on certified
    /// embedding failure instead.
    #[test]
    fn claim10_refutation_planar_graphs_can_violate() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut refuted = 0usize;
        for _ in 0..10 {
            let g = planar::apollonian(40, &mut rng).graph;
            let rot = check_planarity(&g).into_rotation().expect("planar");
            assert!(rot.is_planar_embedding(&g));
            let ivs = non_tree_intervals(&g, &rot, NodeId::new(0));
            if count_violating_edges(&ivs) > 0 {
                refuted += 1;
            }
        }
        assert!(refuted > 0, "the Claim 10 refutation should reproduce");
    }

    /// Some planar graphs *do* have violation-free labellings — outer
    /// cycles and trees trivially, and Claim 10's intent survives on them
    /// (Claim 8's converse direction applies).
    #[test]
    fn simple_families_are_violation_free() {
        let g = planar::cycle(12).graph;
        let rot = check_planarity(&g).into_rotation().expect("planar");
        let ivs = non_tree_intervals(&g, &rot, NodeId::new(0));
        assert_eq!(ivs.len(), 1, "a cycle has one non-tree edge");
        assert_eq!(count_violating_edges(&ivs), 0);

        let mut rng2 = StdRng::seed_from_u64(5);
        let t = planar::random_tree(30, &mut rng2).graph;
        let rot = check_planarity(&t).into_rotation().expect("planar");
        assert!(non_tree_intervals(&t, &rot, NodeId::new(0)).is_empty());
    }

    #[test]
    fn k33_has_violations_with_any_rotation() {
        // Claim 8 contrapositive: a non-planar graph has violations under
        // every labelling.
        let g = nonplanar::complete_bipartite(3, 3).graph;
        let rot = RotationSystem::from_adjacency(&g);
        let ivs = non_tree_intervals(&g, &rot, NodeId::new(0));
        assert!(count_violating_edges(&ivs) > 0);
    }

    #[test]
    fn corollary9_far_graphs_have_many_violations() {
        let mut rng = StdRng::seed_from_u64(23);
        let c = nonplanar::planar_plus_chords(60, 40, &mut rng);
        let rot = RotationSystem::from_adjacency(&c.graph);
        let ivs = non_tree_intervals(&c.graph, &rot, NodeId::new(0));
        let gamma = c.far_fraction();
        let viol = count_violating_edges(&ivs);
        assert!(
            viol as f64 >= gamma * c.graph.m() as f64,
            "violations {viol} below Corollary 9 bound {}",
            gamma * c.graph.m() as f64
        );
    }

    #[test]
    fn audit_partition_reports() {
        let g = planar::grid(5, 5).graph;
        let cfg = crate::TesterConfig::new(0.2).with_phases(4);
        let mut engine = planartest_sim::Engine::new(&g, planartest_sim::SimConfig::default());
        let p = crate::partition::run_partition(&mut engine, &cfg).unwrap();
        let audit = audit_partition(&g, &p);
        assert!(audit.parts_connected);
        assert_eq!(audit.parts, p.state.part_count());
        assert!(audit.cut_fraction <= 1.0);
    }
}
