//! Message-level protocols specific to Stage II: pipelined label
//! distribution down BFS trees and label exchange across non-tree edges.
//!
//! Both protocols are **batch-native**: the `_batch` entry points drive
//! any number of independent instances (each with its own tree /
//! digit assignment / edge assignment) in lockstep through
//! [`EngineCore::run_logic_batch`], returning per-instance results and
//! [`RunReport`]s that are bit-for-bit identical to running the
//! instances sequentially. The single-instance wrappers are batches of
//! one — every tester run exercises the multiplexed path.

use std::collections::HashMap;

use planartest_graph::{EdgeId, Graph, NodeId};
use planartest_sim::tree::TreeTopology;
use planartest_sim::EngineCore;
use planartest_sim::{Msg, NodeLogic, Outbox, RunReport, SimError};

use crate::stage2::labels::Label;

const TAG_DIGIT: u64 = 0;
const TAG_END: u64 = 1;

/// One label-distribution instance: a rooted forest plus each node's
/// child-digit assignment (`digit_of[parent][child] = digit`).
pub(crate) struct LabelSpec<'t> {
    pub tree: &'t TreeTopology,
    pub digit_of: &'t [HashMap<u32, u32>],
}

/// The per-instance logic behind [`distribute_labels_batch`]: each
/// node's label is its parent's label plus its own child digit, fully
/// pipelined in `O(depth + max label length)` rounds.
struct LabelLogic<'t> {
    tree: &'t TreeTopology,
    digit_of: &'t [HashMap<u32, u32>],
    label: Vec<Vec<u32>>,
    end_pending: Vec<bool>,
}

impl LabelLogic<'_> {
    fn start_children(&mut self, node: NodeId, out: &mut Outbox<'_>) {
        let digits = &self.digit_of[node.index()];
        let mut any = false;
        for &c in self.tree.children(node) {
            let d = *digits
                .get(&c.raw())
                .unwrap_or_else(|| panic!("child {c:?} of {node:?} has no digit (embedding bug)"));
            out.send(c, Msg::words(&[TAG_DIGIT, d as u64]));
            any = true;
        }
        if any {
            self.end_pending[node.index()] = true;
            out.wake();
        }
    }
}

impl NodeLogic for LabelLogic<'_> {
    fn init(&mut self, node: NodeId, out: &mut Outbox<'_>) {
        if self.tree.is_root(node) {
            self.start_children(node, out);
        }
    }
    fn round(&mut self, node: NodeId, inbox: &[(NodeId, Msg)], out: &mut Outbox<'_>) {
        let v = node.index();
        if self.end_pending[v] && inbox.is_empty() {
            self.end_pending[v] = false;
            for &c in self.tree.children(node) {
                out.send(c, Msg::words(&[TAG_END]));
            }
            return;
        }
        for (_, msg) in inbox {
            match msg.word(0) {
                TAG_DIGIT => {
                    let d = msg.word(1) as u32;
                    self.label[v].push(d);
                    for &c in self.tree.children(node) {
                        out.send(c, msg.clone());
                    }
                }
                TAG_END => {
                    // Own label complete: issue each child its final
                    // digit, then an END next round.
                    self.start_children(node, out);
                }
                other => unreachable!("label tag {other}"),
            }
        }
    }
}

/// Distributes vertex labels down every part tree for each instance of
/// the batch, in lockstep. Returns per instance the node labels and the
/// instance's own [`RunReport`].
pub(crate) fn distribute_labels_batch<'g, E: EngineCore<'g>>(
    engine: &mut E,
    specs: &[LabelSpec<'_>],
    max_rounds: u64,
) -> Result<Vec<(Vec<Label>, RunReport)>, SimError> {
    let n = engine.graph().n();
    let mut logics: Vec<LabelLogic<'_>> = specs
        .iter()
        .map(|s| LabelLogic {
            tree: s.tree,
            digit_of: s.digit_of,
            label: vec![Vec::new(); n],
            end_pending: vec![false; n],
        })
        .collect();
    let results = engine.run_logic_batch(&mut logics, max_rounds);
    results
        .into_iter()
        .zip(logics)
        .map(|(result, logic)| {
            result.map(|report| (logic.label.into_iter().map(Label).collect(), report))
        })
        .collect()
}

/// Single-instance [`distribute_labels_batch`] (a batch of one).
pub(crate) fn distribute_labels<'g, E: EngineCore<'g>>(
    engine: &mut E,
    tree: &TreeTopology,
    digit_of: &[HashMap<u32, u32>],
    max_rounds: u64,
) -> Result<Vec<Label>, SimError> {
    let mut out = distribute_labels_batch(engine, &[LabelSpec { tree, digit_of }], max_rounds)?;
    Ok(out.pop().expect("one instance").0)
}

/// One label-exchange instance: the non-tree edges assigned to each
/// node plus every node's label.
pub(crate) struct ExchangeSpec<'t> {
    pub assigned: &'t [Vec<EdgeId>],
    pub node_labels: &'t [Label],
}

/// The per-instance logic behind [`exchange_edge_labels_batch`]:
/// streams framed label words over bandwidth-sized chunks.
struct StreamLogic {
    /// Per node: remaining (target, words) channels.
    sendq: Vec<Vec<(NodeId, Vec<u64>)>>,
    cursor: Vec<usize>,
    chunk: usize,
    /// Received words keyed by sender.
    received: Vec<HashMap<u32, Vec<u64>>>,
}

impl StreamLogic {
    fn pump(&mut self, node: NodeId, out: &mut Outbox<'_>) {
        let v = node.index();
        let pos = self.cursor[v];
        let mut more = false;
        for (to, words) in &self.sendq[v] {
            if pos < words.len() {
                let end = (pos + self.chunk).min(words.len());
                out.send(*to, Msg::words(&words[pos..end]));
                if end < words.len() {
                    more = true;
                }
            }
        }
        self.cursor[v] = pos + self.chunk;
        if more {
            out.wake();
        }
    }
}

impl NodeLogic for StreamLogic {
    fn init(&mut self, node: NodeId, out: &mut Outbox<'_>) {
        if !self.sendq[node.index()].is_empty() {
            self.pump(node, out);
        }
    }
    fn round(&mut self, node: NodeId, inbox: &[(NodeId, Msg)], out: &mut Outbox<'_>) {
        let v = node.index();
        for (from, msg) in inbox {
            self.received[v]
                .entry(from.raw())
                .or_default()
                .extend_from_slice(msg.as_words());
        }
        if self.cursor[v] > 0 || !self.sendq[v].is_empty() {
            self.pump(node, out);
        }
    }
}

/// One instance's result in an [`exchange_edge_labels_batch`]: the
/// other-endpoint label digits per node (in `assigned[node]` order),
/// plus the instance's own [`RunReport`].
pub(crate) type ExchangeLane = (Vec<Vec<Vec<u32>>>, RunReport);

/// Streams, for every assigned non-tree edge of every instance, the
/// non-owner endpoint's label to the owner — all instances in lockstep.
/// Returns, per instance, the other-endpoint label words per node (in
/// `assigned[node]` order) and the instance's own [`RunReport`].
pub(crate) fn exchange_edge_labels_batch<'g, E: EngineCore<'g>>(
    engine: &mut E,
    g: &Graph,
    specs: &[ExchangeSpec<'_>],
    max_rounds: u64,
) -> Result<Vec<ExchangeLane>, SimError> {
    let n = g.n();
    let chunk = engine.config().max_words_per_message;
    let mut logics: Vec<StreamLogic> = specs
        .iter()
        .map(|spec| {
            // Channels: (sender w, receiver v=owner, framed words of w's
            // label).
            let mut outgoing: Vec<Vec<(NodeId, Vec<u64>)>> = vec![Vec::new(); n];
            for (v, edges) in spec.assigned.iter().enumerate() {
                for &e in edges {
                    let w = g.other_endpoint(e, NodeId::new(v));
                    // Digits packed several to a word (`pack_label`)
                    // rather than one per word: same O(log n)-bit
                    // messages, a fraction of the message count.
                    let mut words = Vec::new();
                    crate::stage2::labels::pack_label(&spec.node_labels[w.index()].0, &mut words);
                    outgoing[w.index()].push((NodeId::new(v), words));
                }
            }
            StreamLogic {
                sendq: outgoing,
                cursor: vec![0; n],
                chunk,
                received: vec![HashMap::new(); n],
            }
        })
        .collect();
    let results = engine.run_logic_batch(&mut logics, max_rounds);
    results
        .into_iter()
        .zip(logics)
        .zip(specs)
        .map(|((result, logic), spec)| {
            result.map(|report| {
                let mut out = vec![Vec::new(); n];
                for (v, edges) in spec.assigned.iter().enumerate() {
                    for &e in edges {
                        let w = g.other_endpoint(e, NodeId::new(v));
                        let words = logic.received[v]
                            .get(&w.raw())
                            .unwrap_or_else(|| panic!("missing label stream {w:?} -> n{v}"));
                        let (digits, used) = crate::stage2::labels::unpack_label(words);
                        assert_eq!(words.len(), used, "label stream framing corrupted");
                        out[v].push(digits);
                    }
                }
                (out, report)
            })
        })
        .collect()
}

/// Single-instance [`exchange_edge_labels_batch`] (a batch of one).
pub(crate) fn exchange_edge_labels<'g, E: EngineCore<'g>>(
    engine: &mut E,
    g: &Graph,
    assigned: &[Vec<EdgeId>],
    node_labels: &[Label],
    max_rounds: u64,
) -> Result<Vec<Vec<Vec<u32>>>, SimError> {
    let mut out = exchange_edge_labels_batch(
        engine,
        g,
        &[ExchangeSpec {
            assigned,
            node_labels,
        }],
        max_rounds,
    )?;
    Ok(out.pop().expect("one instance").0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use planartest_graph::Graph;
    use planartest_sim::Engine;
    use planartest_sim::SimConfig;

    #[test]
    fn labels_follow_digits() {
        // A rooted binary-ish tree as a graph: 0-(1,2), 1-(3,4).
        let g = Graph::from_edges(5, [(0, 1), (0, 2), (1, 3), (1, 4)]).unwrap();
        let parent = vec![
            None,
            Some(NodeId::new(0)),
            Some(NodeId::new(0)),
            Some(NodeId::new(1)),
            Some(NodeId::new(1)),
        ];
        let tree = TreeTopology::from_parents(&g, parent).unwrap();
        let mut digit_of: Vec<HashMap<u32, u32>> = vec![HashMap::new(); 5];
        digit_of[0].insert(1, 1);
        digit_of[0].insert(2, 2);
        digit_of[1].insert(3, 2);
        digit_of[1].insert(4, 1);
        let mut engine = Engine::new(&g, SimConfig::default());
        let labels = distribute_labels(&mut engine, &tree, &digit_of, 1000).unwrap();
        assert_eq!(labels[0], Label(vec![]));
        assert_eq!(labels[1], Label(vec![1]));
        assert_eq!(labels[2], Label(vec![2]));
        assert_eq!(labels[3], Label(vec![1, 2]));
        assert_eq!(labels[4], Label(vec![1, 1]));
    }

    #[test]
    fn label_distribution_is_pipelined() {
        // A path: label length grows linearly; rounds must stay O(depth),
        // not O(depth^2).
        let k = 40;
        let g = Graph::from_edges(k, (0..k - 1).map(|i| (i, i + 1))).unwrap();
        let parent: Vec<Option<NodeId>> = std::iter::once(None)
            .chain((1..k).map(|i| Some(NodeId::new(i - 1))))
            .collect();
        let tree = TreeTopology::from_parents(&g, parent).unwrap();
        let digit_of: Vec<HashMap<u32, u32>> = (0..k)
            .map(|v| {
                let mut m = HashMap::new();
                if v + 1 < k {
                    m.insert((v + 1) as u32, 1);
                }
                m
            })
            .collect();
        let mut engine = Engine::new(&g, SimConfig::default());
        let labels = distribute_labels(&mut engine, &tree, &digit_of, 10_000).unwrap();
        assert_eq!(labels[k - 1].len(), k - 1);
        let rounds = engine.stats().rounds;
        assert!(rounds <= 3 * k as u64, "rounds {rounds} not pipelined");
    }

    #[test]
    fn batched_label_instances_match_sequential_runs() {
        // Two instances over the same graph with different trees and
        // digit assignments: the batch must reproduce each sequential
        // run bit for bit.
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let tree_a = TreeTopology::from_parents(
            &g,
            vec![
                None,
                Some(NodeId::new(0)),
                Some(NodeId::new(1)),
                Some(NodeId::new(0)),
            ],
        )
        .unwrap();
        let tree_b = TreeTopology::from_parents(
            &g,
            vec![
                Some(NodeId::new(1)),
                Some(NodeId::new(2)),
                None,
                Some(NodeId::new(2)),
            ],
        )
        .unwrap();
        let digits = |pairs: &[(usize, usize, u32)]| {
            let mut d: Vec<HashMap<u32, u32>> = vec![HashMap::new(); 4];
            for &(p, c, digit) in pairs {
                d[p].insert(c as u32, digit);
            }
            d
        };
        let digit_a = digits(&[(0, 1, 1), (0, 3, 2), (1, 2, 1)]);
        let digit_b = digits(&[(2, 1, 2), (2, 3, 1), (1, 0, 1)]);

        let mut seq = Vec::new();
        for (tree, digit_of) in [(&tree_a, &digit_a), (&tree_b, &digit_b)] {
            let mut engine = Engine::new(&g, SimConfig::default());
            let labels = distribute_labels(&mut engine, tree, digit_of, 1000).unwrap();
            seq.push((labels, *engine.stats()));
        }

        let mut engine = Engine::new(&g, SimConfig::default());
        let batched = distribute_labels_batch(
            &mut engine,
            &[
                LabelSpec {
                    tree: &tree_a,
                    digit_of: &digit_a,
                },
                LabelSpec {
                    tree: &tree_b,
                    digit_of: &digit_b,
                },
            ],
            1000,
        )
        .unwrap();
        for ((labels, report), (want_labels, want_stats)) in batched.iter().zip(&seq) {
            assert_eq!(labels, want_labels);
            assert_eq!(report.rounds, want_stats.rounds);
            assert_eq!(report.messages, want_stats.messages);
            assert_eq!(report.words, want_stats.words);
        }
        // The engine absorbed both instances as separate runs.
        assert_eq!(engine.stats().runs, 2);
    }

    #[test]
    fn edge_label_exchange_roundtrip() {
        // Cycle 0-1-2-3: BFS tree from 0 misses one edge; owner gets the
        // other side's label.
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let labels = vec![
            Label(vec![]),
            Label(vec![1]),
            Label(vec![1, 1]),
            Label(vec![2]),
        ];
        let e = g.edge_between(NodeId::new(2), NodeId::new(3)).unwrap();
        let mut assigned: Vec<Vec<EdgeId>> = vec![Vec::new(); 4];
        assigned[2].push(e);
        let mut engine = Engine::new(&g, SimConfig::default());
        let got = exchange_edge_labels(&mut engine, &g, &assigned, &labels, 1000).unwrap();
        assert_eq!(got[2], vec![vec![2u32]]);
    }

    #[test]
    fn batched_exchange_instances_stay_independent() {
        // Same cycle, two instances assigning *different* non-tree edges
        // with different labels: each lane must see only its own data.
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let labels_a = vec![
            Label(vec![]),
            Label(vec![1]),
            Label(vec![1, 1]),
            Label(vec![2]),
        ];
        let labels_b = vec![
            Label(vec![9]),
            Label(vec![]),
            Label(vec![3]),
            Label(vec![3, 1]),
        ];
        let e23 = g.edge_between(NodeId::new(2), NodeId::new(3)).unwrap();
        let e01 = g.edge_between(NodeId::new(0), NodeId::new(1)).unwrap();
        let mut assigned_a: Vec<Vec<EdgeId>> = vec![Vec::new(); 4];
        assigned_a[2].push(e23);
        let mut assigned_b: Vec<Vec<EdgeId>> = vec![Vec::new(); 4];
        assigned_b[1].push(e01);
        let mut engine = Engine::new(&g, SimConfig::default());
        let got = exchange_edge_labels_batch(
            &mut engine,
            &g,
            &[
                ExchangeSpec {
                    assigned: &assigned_a,
                    node_labels: &labels_a,
                },
                ExchangeSpec {
                    assigned: &assigned_b,
                    node_labels: &labels_b,
                },
            ],
            1000,
        )
        .unwrap();
        assert_eq!(got[0].0[2], vec![vec![2u32]]);
        assert_eq!(got[1].0[1], vec![vec![9u32]]);
    }
}
