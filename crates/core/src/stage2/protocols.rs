//! Message-level protocols specific to Stage II: pipelined label
//! distribution down BFS trees and label exchange across non-tree edges.

use std::collections::HashMap;

use planartest_graph::{EdgeId, Graph, NodeId};
use planartest_sim::tree::TreeTopology;
use planartest_sim::EngineCore;
use planartest_sim::{Msg, NodeLogic, Outbox, SimError};

use crate::stage2::labels::Label;

const TAG_DIGIT: u64 = 0;
const TAG_END: u64 = 1;

/// Distributes vertex labels down every part tree: each node's label is
/// its parent's label plus its own child digit (from `digit_of[parent]`).
/// Fully pipelined: `O(depth + max label length)` rounds.
pub(crate) fn distribute_labels<'g, E: EngineCore<'g>>(
    engine: &mut E,
    tree: &TreeTopology,
    digit_of: &[HashMap<u32, u32>],
    max_rounds: u64,
) -> Result<Vec<Label>, SimError> {
    struct LabelLogic<'t> {
        tree: &'t TreeTopology,
        digit_of: &'t [HashMap<u32, u32>],
        label: Vec<Vec<u32>>,
        end_pending: Vec<bool>,
    }
    impl LabelLogic<'_> {
        fn start_children(&mut self, node: NodeId, out: &mut Outbox<'_>) {
            let digits = &self.digit_of[node.index()];
            let mut any = false;
            for &c in self.tree.children(node) {
                let d = *digits.get(&c.raw()).unwrap_or_else(|| {
                    panic!("child {c:?} of {node:?} has no digit (embedding bug)")
                });
                out.send(c, Msg::words(&[TAG_DIGIT, d as u64]));
                any = true;
            }
            if any {
                self.end_pending[node.index()] = true;
                out.wake();
            }
        }
    }
    impl NodeLogic for LabelLogic<'_> {
        fn init(&mut self, node: NodeId, out: &mut Outbox<'_>) {
            if self.tree.is_root(node) {
                self.start_children(node, out);
            }
        }
        fn round(&mut self, node: NodeId, inbox: &[(NodeId, Msg)], out: &mut Outbox<'_>) {
            let v = node.index();
            if self.end_pending[v] && inbox.is_empty() {
                self.end_pending[v] = false;
                for &c in self.tree.children(node) {
                    out.send(c, Msg::words(&[TAG_END]));
                }
                return;
            }
            for (_, msg) in inbox {
                match msg.word(0) {
                    TAG_DIGIT => {
                        let d = msg.word(1) as u32;
                        self.label[v].push(d);
                        for &c in self.tree.children(node) {
                            out.send(c, msg.clone());
                        }
                    }
                    TAG_END => {
                        // Own label complete: issue each child its final
                        // digit, then an END next round.
                        self.start_children(node, out);
                    }
                    other => unreachable!("label tag {other}"),
                }
            }
        }
    }
    let n = engine.graph().n();
    let mut logic = LabelLogic {
        tree,
        digit_of,
        label: vec![Vec::new(); n],
        end_pending: vec![false; n],
    };
    engine.run_logic(&mut logic, max_rounds)?;
    Ok(logic.label.into_iter().map(Label).collect())
}

/// Streams, for every assigned non-tree edge, the non-owner endpoint's
/// label to the owner. Returns, per node, the other-endpoint label words
/// in the same order as `assigned[node]`.
pub(crate) fn exchange_edge_labels<'g, E: EngineCore<'g>>(
    engine: &mut E,
    g: &Graph,
    assigned: &[Vec<EdgeId>],
    node_labels: &[Label],
    max_rounds: u64,
) -> Result<Vec<Vec<Vec<u32>>>, SimError> {
    // Channels: (sender w, receiver v=owner, framed words of w's label).
    let n = g.n();
    let mut outgoing: Vec<Vec<(NodeId, Vec<u64>)>> = vec![Vec::new(); n];
    for (v, edges) in assigned.iter().enumerate() {
        for &e in edges {
            let w = g.other_endpoint(e, NodeId::new(v));
            let label = &node_labels[w.index()].0;
            let mut words = vec![label.len() as u64];
            words.extend(label.iter().map(|&d| d as u64));
            outgoing[w.index()].push((NodeId::new(v), words));
        }
    }

    struct StreamLogic {
        /// Per node: remaining (target, words) channels.
        sendq: Vec<Vec<(NodeId, Vec<u64>)>>,
        cursor: Vec<usize>,
        chunk: usize,
        /// Received words keyed by sender.
        received: Vec<HashMap<u32, Vec<u64>>>,
    }
    impl StreamLogic {
        fn pump(&mut self, node: NodeId, out: &mut Outbox<'_>) {
            let v = node.index();
            let pos = self.cursor[v];
            let mut more = false;
            for (to, words) in &self.sendq[v] {
                if pos < words.len() {
                    let end = (pos + self.chunk).min(words.len());
                    out.send(*to, Msg::words(&words[pos..end]));
                    if end < words.len() {
                        more = true;
                    }
                }
            }
            self.cursor[v] = pos + self.chunk;
            if more {
                out.wake();
            }
        }
    }
    impl NodeLogic for StreamLogic {
        fn init(&mut self, node: NodeId, out: &mut Outbox<'_>) {
            if !self.sendq[node.index()].is_empty() {
                self.pump(node, out);
            }
        }
        fn round(&mut self, node: NodeId, inbox: &[(NodeId, Msg)], out: &mut Outbox<'_>) {
            let v = node.index();
            for (from, msg) in inbox {
                self.received[v]
                    .entry(from.raw())
                    .or_default()
                    .extend_from_slice(msg.as_words());
            }
            if self.cursor[v] > 0 || !self.sendq[v].is_empty() {
                self.pump(node, out);
            }
        }
    }
    let chunk = engine.config().max_words_per_message;
    let mut logic = StreamLogic {
        sendq: outgoing,
        cursor: vec![0; n],
        chunk,
        received: vec![HashMap::new(); n],
    };
    engine.run_logic(&mut logic, max_rounds)?;

    let mut out = vec![Vec::new(); n];
    for (v, edges) in assigned.iter().enumerate() {
        for &e in edges {
            let w = g.other_endpoint(e, NodeId::new(v));
            let words = logic.received[v]
                .get(&w.raw())
                .unwrap_or_else(|| panic!("missing label stream {w:?} -> n{v}"));
            let len = words[0] as usize;
            assert_eq!(words.len(), len + 1, "label stream framing corrupted");
            out[v].push(words[1..].iter().map(|&x| x as u32).collect());
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use planartest_graph::Graph;
    use planartest_sim::Engine;
    use planartest_sim::SimConfig;

    #[test]
    fn labels_follow_digits() {
        // A rooted binary-ish tree as a graph: 0-(1,2), 1-(3,4).
        let g = Graph::from_edges(5, [(0, 1), (0, 2), (1, 3), (1, 4)]).unwrap();
        let parent = vec![
            None,
            Some(NodeId::new(0)),
            Some(NodeId::new(0)),
            Some(NodeId::new(1)),
            Some(NodeId::new(1)),
        ];
        let tree = TreeTopology::from_parents(&g, parent).unwrap();
        let mut digit_of: Vec<HashMap<u32, u32>> = vec![HashMap::new(); 5];
        digit_of[0].insert(1, 1);
        digit_of[0].insert(2, 2);
        digit_of[1].insert(3, 2);
        digit_of[1].insert(4, 1);
        let mut engine = Engine::new(&g, SimConfig::default());
        let labels = distribute_labels(&mut engine, &tree, &digit_of, 1000).unwrap();
        assert_eq!(labels[0], Label(vec![]));
        assert_eq!(labels[1], Label(vec![1]));
        assert_eq!(labels[2], Label(vec![2]));
        assert_eq!(labels[3], Label(vec![1, 2]));
        assert_eq!(labels[4], Label(vec![1, 1]));
    }

    #[test]
    fn label_distribution_is_pipelined() {
        // A path: label length grows linearly; rounds must stay O(depth),
        // not O(depth^2).
        let k = 40;
        let g = Graph::from_edges(k, (0..k - 1).map(|i| (i, i + 1))).unwrap();
        let parent: Vec<Option<NodeId>> = std::iter::once(None)
            .chain((1..k).map(|i| Some(NodeId::new(i - 1))))
            .collect();
        let tree = TreeTopology::from_parents(&g, parent).unwrap();
        let digit_of: Vec<HashMap<u32, u32>> = (0..k)
            .map(|v| {
                let mut m = HashMap::new();
                if v + 1 < k {
                    m.insert((v + 1) as u32, 1);
                }
                m
            })
            .collect();
        let mut engine = Engine::new(&g, SimConfig::default());
        let labels = distribute_labels(&mut engine, &tree, &digit_of, 10_000).unwrap();
        assert_eq!(labels[k - 1].len(), k - 1);
        let rounds = engine.stats().rounds;
        assert!(rounds <= 3 * k as u64, "rounds {rounds} not pipelined");
    }

    #[test]
    fn edge_label_exchange_roundtrip() {
        // Cycle 0-1-2-3: BFS tree from 0 misses one edge; owner gets the
        // other side's label.
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let labels = vec![
            Label(vec![]),
            Label(vec![1]),
            Label(vec![1, 1]),
            Label(vec![2]),
        ];
        let e = g.edge_between(NodeId::new(2), NodeId::new(3)).unwrap();
        let mut assigned: Vec<Vec<EdgeId>> = vec![Vec::new(); 4];
        assigned[2].push(e);
        let mut engine = Engine::new(&g, SimConfig::default());
        let got = exchange_edge_labels(&mut engine, &g, &assigned, &labels, 1000).unwrap();
        assert_eq!(got[2], vec![vec![2u32]]);
    }
}
