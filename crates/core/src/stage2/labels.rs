//! Tree labels and the violating-edge condition (Definition 7).
//!
//! A node's label is the sequence of child indices along its BFS-tree path
//! from the part root, where children are numbered by the circular order
//! of the part's combinatorial embedding starting after the parent edge.
//! Labels compare lexicographically; a non-tree edge *violates* if its
//! label interval strictly interleaves another non-tree edge's interval.

use std::cmp::Ordering;

use super::pack;

/// A node label: digits along the tree path from the root (root = empty).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Label(pub Vec<u32>);

impl Label {
    /// The root's (empty) label.
    pub fn root() -> Self {
        Label(Vec::new())
    }

    /// This label extended by one child digit.
    pub fn child(&self, digit: u32) -> Self {
        let mut v = self.0.clone();
        v.push(digit);
        Label(v)
    }

    /// Number of digits (= tree depth of the node).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether this is the root label.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Lexicographic comparison per the paper's footnote 5: a prefix
    /// precedes its extensions.
    pub fn lex_cmp(&self, other: &Label) -> Ordering {
        self.0.cmp(&other.0)
    }
}

/// An undirected non-tree edge as an ordered label interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabeledEdge {
    /// The smaller endpoint label.
    pub lo: Label,
    /// The larger endpoint label.
    pub hi: Label,
}

impl LabeledEdge {
    /// Builds the ordered interval from two endpoint labels.
    ///
    /// # Panics
    ///
    /// Panics if the labels are equal (two distinct nodes always have
    /// distinct labels).
    pub fn new(a: Label, b: Label) -> Self {
        match a.lex_cmp(&b) {
            Ordering::Less => LabeledEdge { lo: a, hi: b },
            Ordering::Greater => LabeledEdge { lo: b, hi: a },
            Ordering::Equal => panic!("a non-tree edge cannot connect equal labels"),
        }
    }

    /// Definition 7: `(u,v)` and `(u',v')` *intersect* iff
    /// `ℓ(u) < ℓ(u') < ℓ(v) < ℓ(v')` (in either role order).
    pub fn intersects(&self, other: &LabeledEdge) -> bool {
        let lt = |a: &Label, b: &Label| a.lex_cmp(b) == Ordering::Less;
        (lt(&self.lo, &other.lo) && lt(&other.lo, &self.hi) && lt(&self.hi, &other.hi))
            || (lt(&other.lo, &self.lo) && lt(&self.lo, &other.hi) && lt(&other.hi, &self.hi))
    }
}

/// Appends the packed wire encoding of a label to `out`: a header word
/// `(len << 2) | width_class` followed by the digits packed 16, 4 or 2
/// per word (width classes 0, 1, 2 = 4-, 16- and 32-bit digits, chosen
/// from the label's largest digit).
///
/// One `u64` word models one `O(log n)`-bit message unit, so shipping
/// one child digit (almost always < 16) per word under-uses every
/// message by an order of magnitude. The sample-interval streams —
/// the tester's dominant message volume — ride this encoding.
///
/// The digit transpose dispatches to the SWAR kernels in
/// [`super::pack`] (pairwise in-register packing), or to the scalar
/// reference under the `scalar-kernels` feature.
pub(crate) fn pack_label(digits: &[u32], out: &mut Vec<u64>) {
    #[cfg(not(feature = "scalar-kernels"))]
    {
        let (width, bits, per) = pack::width_class_swar(digits);
        out.push(((digits.len() as u64) << 2) | width);
        pack::pack_swar(digits, bits, per, out);
    }
    #[cfg(feature = "scalar-kernels")]
    {
        let (width, bits, per) = pack::width_class_scalar(digits);
        out.push(((digits.len() as u64) << 2) | width);
        pack::pack_scalar(digits, bits, per, out);
    }
}

/// Decodes one packed label starting at `words[0]`; returns the digits
/// and the number of words consumed (header + packed digits). Inverse
/// of [`pack_label`], with the same kernel dispatch.
pub(crate) fn unpack_label(words: &[u64]) -> (Vec<u32>, usize) {
    let header = words[0];
    let len = (header >> 2) as usize;
    let (bits, per): (u32, usize) = match header & 3 {
        0 => (4, 16),
        1 => (16, 4),
        2 => (32, 2),
        other => unreachable!("unknown label width class {other}"),
    };
    let mut digits = Vec::with_capacity(len);
    #[cfg(not(feature = "scalar-kernels"))]
    pack::unpack_swar(&words[1..], len, bits, per, &mut digits);
    #[cfg(feature = "scalar-kernels")]
    pack::unpack_scalar(&words[1..], len, bits, per, &mut digits);
    (digits, 1 + len.div_ceil(per))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(digits: &[u32]) -> Label {
        Label(digits.to_vec())
    }

    #[test]
    fn lex_order() {
        assert_eq!(l(&[]).lex_cmp(&l(&[1])), Ordering::Less); // prefix first
        assert_eq!(l(&[1]).lex_cmp(&l(&[2])), Ordering::Less);
        assert_eq!(l(&[1, 2]).lex_cmp(&l(&[1, 2])), Ordering::Equal);
        assert_eq!(l(&[2]).lex_cmp(&l(&[1, 9])), Ordering::Greater);
        assert_eq!(l(&[1, 1]).lex_cmp(&l(&[1, 2])), Ordering::Less);
    }

    #[test]
    fn label_building() {
        let r = Label::root();
        assert!(r.is_empty());
        let c = r.child(3).child(1);
        assert_eq!(c.len(), 2);
        assert_eq!(c, l(&[3, 1]));
    }

    #[test]
    fn interval_normalisation() {
        let e = LabeledEdge::new(l(&[2]), l(&[1]));
        assert_eq!(e.lo, l(&[1]));
        assert_eq!(e.hi, l(&[2]));
    }

    #[test]
    #[should_panic(expected = "equal labels")]
    fn equal_labels_panic() {
        let _ = LabeledEdge::new(l(&[1]), l(&[1]));
    }

    #[test]
    fn intersection_cases() {
        // Intervals over digits: (1,3) vs (2,4) interleave.
        let a = LabeledEdge::new(l(&[1]), l(&[3]));
        let b = LabeledEdge::new(l(&[2]), l(&[4]));
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        // Nested: (1,4) vs (2,3) do not.
        let c = LabeledEdge::new(l(&[1]), l(&[4]));
        let d = LabeledEdge::new(l(&[2]), l(&[3]));
        assert!(!c.intersects(&d));
        assert!(!d.intersects(&c));
        // Disjoint: (1,2) vs (3,4) do not.
        let e = LabeledEdge::new(l(&[1]), l(&[2]));
        let f = LabeledEdge::new(l(&[3]), l(&[4]));
        assert!(!e.intersects(&f));
        // Sharing an endpoint does not intersect (strict inequalities).
        let g = LabeledEdge::new(l(&[1]), l(&[3]));
        let h = LabeledEdge::new(l(&[3]), l(&[5]));
        assert!(!g.intersects(&h));
        // Self-comparison is not a violation.
        assert!(!a.intersects(&a));
    }

    #[test]
    fn pack_roundtrip_across_width_classes() {
        let cases: Vec<Vec<u32>> = vec![
            vec![],
            vec![0],
            vec![1, 2, 3],
            (0..40).map(|i| i % 16).collect(), // 4-bit, multi-word
            vec![15, 16],                      // forces 16-bit
            vec![1, 65_535],                   // 16-bit boundary
            vec![65_536],                      // forces 32-bit
            vec![u32::MAX, 0, 7],              // 32-bit, padding
            (0..9).map(|i| i * 10_000).collect(), // mixed magnitudes
        ];
        for digits in cases {
            let mut words = Vec::new();
            pack_label(&digits, &mut words);
            // Sanity: small digits pack an order of magnitude denser
            // than one-word-per-digit.
            assert!(words.len() <= 1 + digits.len());
            let (got, used) = unpack_label(&words);
            assert_eq!(got, digits);
            assert_eq!(used, words.len());
        }
    }

    #[test]
    fn pack_streams_concatenate() {
        // Two labels back to back — the interval wire format.
        let a = vec![1u32, 2, 3];
        let b = vec![70_000u32];
        let mut words = Vec::new();
        pack_label(&a, &mut words);
        pack_label(&b, &mut words);
        let (got_a, used) = unpack_label(&words);
        let (got_b, used_b) = unpack_label(&words[used..]);
        assert_eq!((got_a, got_b), (a, b));
        assert_eq!(used + used_b, words.len());
    }

    #[test]
    fn prefix_labels_interleave_correctly() {
        // ℓ(u)=[1] is an ancestor-side label; [1,1] sits inside the
        // subtree: (u=[1], v=[2]) vs (u'=[1,1], v'=[3]).
        let a = LabeledEdge::new(l(&[1]), l(&[2]));
        let b = LabeledEdge::new(l(&[1, 1]), l(&[3]));
        assert!(a.intersects(&b));
    }
}
