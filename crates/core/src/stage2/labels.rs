//! Tree labels and the violating-edge condition (Definition 7).
//!
//! A node's label is the sequence of child indices along its BFS-tree path
//! from the part root, where children are numbered by the circular order
//! of the part's combinatorial embedding starting after the parent edge.
//! Labels compare lexicographically; a non-tree edge *violates* if its
//! label interval strictly interleaves another non-tree edge's interval.

use std::cmp::Ordering;

/// A node label: digits along the tree path from the root (root = empty).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Label(pub Vec<u32>);

impl Label {
    /// The root's (empty) label.
    pub fn root() -> Self {
        Label(Vec::new())
    }

    /// This label extended by one child digit.
    pub fn child(&self, digit: u32) -> Self {
        let mut v = self.0.clone();
        v.push(digit);
        Label(v)
    }

    /// Number of digits (= tree depth of the node).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether this is the root label.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Lexicographic comparison per the paper's footnote 5: a prefix
    /// precedes its extensions.
    pub fn lex_cmp(&self, other: &Label) -> Ordering {
        self.0.cmp(&other.0)
    }
}

/// An undirected non-tree edge as an ordered label interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabeledEdge {
    /// The smaller endpoint label.
    pub lo: Label,
    /// The larger endpoint label.
    pub hi: Label,
}

impl LabeledEdge {
    /// Builds the ordered interval from two endpoint labels.
    ///
    /// # Panics
    ///
    /// Panics if the labels are equal (two distinct nodes always have
    /// distinct labels).
    pub fn new(a: Label, b: Label) -> Self {
        match a.lex_cmp(&b) {
            Ordering::Less => LabeledEdge { lo: a, hi: b },
            Ordering::Greater => LabeledEdge { lo: b, hi: a },
            Ordering::Equal => panic!("a non-tree edge cannot connect equal labels"),
        }
    }

    /// Definition 7: `(u,v)` and `(u',v')` *intersect* iff
    /// `ℓ(u) < ℓ(u') < ℓ(v) < ℓ(v')` (in either role order).
    pub fn intersects(&self, other: &LabeledEdge) -> bool {
        let lt = |a: &Label, b: &Label| a.lex_cmp(b) == Ordering::Less;
        (lt(&self.lo, &other.lo) && lt(&other.lo, &self.hi) && lt(&self.hi, &other.hi))
            || (lt(&other.lo, &self.lo) && lt(&self.lo, &other.hi) && lt(&other.hi, &self.hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(digits: &[u32]) -> Label {
        Label(digits.to_vec())
    }

    #[test]
    fn lex_order() {
        assert_eq!(l(&[]).lex_cmp(&l(&[1])), Ordering::Less); // prefix first
        assert_eq!(l(&[1]).lex_cmp(&l(&[2])), Ordering::Less);
        assert_eq!(l(&[1, 2]).lex_cmp(&l(&[1, 2])), Ordering::Equal);
        assert_eq!(l(&[2]).lex_cmp(&l(&[1, 9])), Ordering::Greater);
        assert_eq!(l(&[1, 1]).lex_cmp(&l(&[1, 2])), Ordering::Less);
    }

    #[test]
    fn label_building() {
        let r = Label::root();
        assert!(r.is_empty());
        let c = r.child(3).child(1);
        assert_eq!(c.len(), 2);
        assert_eq!(c, l(&[3, 1]));
    }

    #[test]
    fn interval_normalisation() {
        let e = LabeledEdge::new(l(&[2]), l(&[1]));
        assert_eq!(e.lo, l(&[1]));
        assert_eq!(e.hi, l(&[2]));
    }

    #[test]
    #[should_panic(expected = "equal labels")]
    fn equal_labels_panic() {
        let _ = LabeledEdge::new(l(&[1]), l(&[1]));
    }

    #[test]
    fn intersection_cases() {
        // Intervals over digits: (1,3) vs (2,4) interleave.
        let a = LabeledEdge::new(l(&[1]), l(&[3]));
        let b = LabeledEdge::new(l(&[2]), l(&[4]));
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        // Nested: (1,4) vs (2,3) do not.
        let c = LabeledEdge::new(l(&[1]), l(&[4]));
        let d = LabeledEdge::new(l(&[2]), l(&[3]));
        assert!(!c.intersects(&d));
        assert!(!d.intersects(&c));
        // Disjoint: (1,2) vs (3,4) do not.
        let e = LabeledEdge::new(l(&[1]), l(&[2]));
        let f = LabeledEdge::new(l(&[3]), l(&[4]));
        assert!(!e.intersects(&f));
        // Sharing an endpoint does not intersect (strict inequalities).
        let g = LabeledEdge::new(l(&[1]), l(&[3]));
        let h = LabeledEdge::new(l(&[3]), l(&[5]));
        assert!(!g.intersects(&h));
        // Self-comparison is not a violation.
        assert!(!a.intersects(&a));
    }

    #[test]
    fn prefix_labels_interleave_correctly() {
        // ℓ(u)=[1] is an ancestor-side label; [1,1] sits inside the
        // subtree: (u=[1], v=[2]) vs (u'=[1,1], v'=[3]).
        let a = LabeledEdge::new(l(&[1]), l(&[2]));
        let b = LabeledEdge::new(l(&[1, 1]), l(&[3]));
        assert!(a.intersects(&b));
    }
}
