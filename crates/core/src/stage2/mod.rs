//! Stage II: per-part planarity testing (§2.2).
//!
//! Within every part of the Stage-I partition, in parallel:
//!
//! 1. build a BFS tree from the part root (message-level);
//! 2. count `n(Gj)`, `m(Gj)` and the non-tree edges (convergecast +
//!    broadcast, message-level); reject if `m > 3n − 6`;
//! 3. compute a combinatorial embedding (the Ghaffari–Haeupler
//!    substitution: Demoucron at the root or a verified hint, with the
//!    rounds charged per \[22\]'s bound — `DESIGN.md` §3);
//! 4. derive edge labels from the embedding and distribute vertex labels
//!    down the tree (message-level, pipelined — labels are `Θ(depth)`
//!    words long);
//! 5. exchange labels across non-tree edges (message-level, pipelined);
//! 6. sample `Θ(log n/ε)` non-tree edges, ship their label pairs to the
//!    root and broadcast them back (message-level, pipelined); every node
//!    checks its assigned non-tree edges against the sample for
//!    Definition 7 violations and rejects on any hit.

pub mod labels;
#[doc(hidden)]
pub mod pack;
mod protocols;

use std::collections::HashMap;

use planartest_embed::demoucron::{check_planarity, PlanarityCheck};
use planartest_embed::RotationSystem;
use planartest_graph::{EdgeId, Graph, NodeId};
use planartest_sim::bfs::distributed_bfs;
use planartest_sim::tree::{broadcast, convergecast};
use planartest_sim::EngineCore;
use planartest_sim::Msg;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use self::labels::{Label, LabeledEdge};
use crate::config::{EmbeddingMode, TesterConfig};
use crate::error::CoreError;
use crate::partition::PartitionState;
use crate::tester::RejectReason;

use planartest_sim::SimStats;

pub(crate) use self::protocols::{distribute_labels, exchange_edge_labels};

/// Per-part summary recorded by Stage II (experiment inputs).
#[derive(Debug, Clone)]
pub struct PartReport {
    /// Part root.
    pub root: NodeId,
    /// Nodes in the part.
    pub n: usize,
    /// Edges inside the part.
    pub m: usize,
    /// Non-tree edges inside the part.
    pub non_tree: usize,
    /// Whether the embedding step produced a verified planar embedding.
    pub embedded_planar: bool,
    /// Sampled non-tree edges.
    pub sampled: usize,
}

/// Outcome of Stage II.
#[derive(Debug, Clone)]
pub struct Stage2Outcome {
    /// Nodes that rejected, with reasons.
    pub rejections: Vec<(NodeId, RejectReason)>,
    /// Nodes that observed a Definition 7 violation. In the paper-faithful
    /// [`EmbeddingMode::Demoucron`] mode these also reject; in the sound
    /// modes they are telemetry only, because our reproduction shows
    /// planar graphs can carry violating labellings (Claim 10 refutation,
    /// `EXPERIMENTS.md` E6).
    pub violation_witnesses: Vec<NodeId>,
    /// Per-part reports.
    pub parts: Vec<PartReport>,
}

impl Stage2Outcome {
    /// Whether every node accepted.
    pub fn accepted(&self) -> bool {
        self.rejections.is_empty()
    }
}

/// The outcome of a batched Stage II: one verdict and one stats ledger
/// per Monte-Carlo instance (seed).
#[derive(Debug, Clone)]
pub struct Stage2Batch {
    /// Per-instance outcomes, in seed order.
    pub outcomes: Vec<Stage2Outcome>,
    /// Per-instance Stage-II statistics: each instance is credited with
    /// the full cost of the seed-independent shared sub-runs (they are
    /// identical for every seed, so running them once is bit-for-bit
    /// equivalent to running them per seed) plus its *own* batched
    /// sample-stream runs.
    pub stats: Vec<SimStats>,
}

/// Runs Stage II over the Stage-I partition (a batch of one seed —
/// `cfg.seed`).
///
/// # Errors
///
/// Infrastructure errors only ([`CoreError`]); verdicts are reported in
/// the outcome.
pub fn run_stage2<'g, E: EngineCore<'g>>(
    engine: &mut E,
    cfg: &TesterConfig,
    state: &PartitionState,
) -> Result<Stage2Outcome, CoreError> {
    let mut batch = run_stage2_many(engine, cfg, &[cfg.seed], state)?;
    Ok(batch.outcomes.pop().expect("one instance"))
}

/// Runs Stage II once per seed over the same Stage-I partition, serving
/// the whole batch of Monte-Carlo instances through one pass.
///
/// Everything before the sampling step — BFS trees, counting,
/// embedding, label distribution and label exchange — is
/// seed-independent and runs **once**, with every instance credited its
/// full cost. The seed-dependent sample streams (ship sampled intervals
/// to the roots, broadcast them back down) run as lockstep lanes of the
/// instance-multiplexed executor
/// ([`planartest_sim::runtime::batch`]), so each instance's verdict and
/// statistics are bit-for-bit what a sequential `run_stage2` with that
/// seed produces.
///
/// # Errors
///
/// Infrastructure errors only ([`CoreError`]); fails fast if any
/// instance errs (e.g. a `1/poly(n)` sample overflow — rerun with other
/// seeds).
pub fn run_stage2_many<'g, E: EngineCore<'g>>(
    engine: &mut E,
    cfg: &TesterConfig,
    seeds: &[u64],
    state: &PartitionState,
) -> Result<Stage2Batch, CoreError> {
    let baseline = *engine.stats();
    let g = engine.graph();
    let n = g.n();
    let max_rounds = cfg.max_rounds;
    let mut rejections: Vec<(NodeId, RejectReason)> = Vec::new();

    // --- 1. BFS trees inside every part. ---
    let roots: Vec<NodeId> = g.nodes().filter(|&v| state.root[v.index()] == v).collect();
    let part_root = state.root.clone();
    let bfs = distributed_bfs(
        engine,
        &roots,
        move |v, r| part_root[v.index()] == r,
        max_rounds,
    )?;
    let tree = bfs.to_tree(g).expect("BFS parents form a forest");

    // Non-tree part edges, assigned to the higher (level, id) endpoint.
    // Each node can compute its assignment after one level exchange.
    let levels: Vec<u64> = (0..n)
        .map(|v| bfs.level[v].expect("parts are connected") as u64)
        .collect();
    let levels_c = levels.clone();
    let _ = crate::comm::exchange(
        engine,
        move |v, _| Some(Msg::words(&[levels_c[v.index()]])),
        max_rounds,
    )?;
    let assigned = assign_non_tree_edges(g, state, &bfs, &levels);

    // --- 2. Counting n(Gj), m(Gj), non-tree counts. ---
    let assigned_count: Vec<u64> = assigned.iter().map(|a| a.len() as u64).collect();
    let tree_edge_count: Vec<u64> = (0..n).map(|v| u64::from(bfs.parent[v].is_some())).collect();
    let counts = convergecast(
        engine,
        &tree,
        move |node, kids: &[(NodeId, Msg)]| {
            let mut nn = 1u64;
            let mut mm = tree_edge_count[node.index()] + assigned_count[node.index()];
            let mut nt = assigned_count[node.index()];
            for (_, m) in kids {
                nn += m.word(0);
                mm += m.word(1);
                nt += m.word(2);
            }
            Msg::words(&[nn, mm, nt])
        },
        max_rounds,
    )?;
    let mut part_counts: HashMap<u32, (u64, u64, u64)> = HashMap::new();
    for &r in &roots {
        let m = counts[r.index()].as_ref().expect("root gets counts");
        part_counts.insert(r.raw(), (m.word(0), m.word(1), m.word(2)));
    }
    // Broadcast the counts back down (nodes need the non-tree count for
    // the sampling probability).
    let pc = part_counts.clone();
    let counts_bcast = broadcast(
        engine,
        &tree,
        move |r| {
            let &(nn, mm, nt) = pc.get(&r.raw()).expect("every part counted");
            Some(Msg::words(&[nn, mm, nt]))
        },
        max_rounds,
    )?;

    // Euler bound rejection at roots.
    for &r in &roots {
        let &(nn, mm, _) = &part_counts[&r.raw()];
        if nn >= 3 && mm > 3 * nn - 6 {
            rejections.push((r, RejectReason::EulerBound));
        }
    }

    // --- 3. Embedding per part (charged substitution). ---
    let members = state.members_by_root();
    let mut reports = Vec::new();
    let mut rotation_at: Vec<Vec<NodeId>> = vec![Vec::new(); n]; // neighbour order per node
    let log_n = (n.max(2) as f64).log2().ceil() as u64;
    for &r in &roots {
        let part: &[NodeId] = &members[&r.raw()];
        let (sub, orig) = g.induced_subgraph(|v| state.root[v.index()] == r);
        let depth = part.iter().map(|&v| levels[v.index()]).max().unwrap_or(0);
        let diameter_bound = 2 * depth + 1;
        engine.charge_rounds(diameter_bound * diameter_bound.min(log_n).max(1));
        let (rot, planar) = embed_part(cfg, g, &sub, &orig);
        if !planar && !matches!(cfg.embedding, EmbeddingMode::Demoucron) {
            // Sound modes: the certified non-planarity of the part is the
            // rejection evidence (it exists whenever the part is far).
            rejections.push((r, RejectReason::EmbeddingFailed));
        }
        for v in sub.nodes() {
            let order: Vec<NodeId> = rot
                .order_at(v)
                .iter()
                .map(|&e| orig[sub.other_endpoint(e, v).index()])
                .collect();
            rotation_at[orig[v.index()].index()] = order;
        }
        let &(nn, mm, nt) = &part_counts[&r.raw()];
        reports.push(PartReport {
            root: r,
            n: nn as usize,
            m: mm as usize,
            non_tree: nt as usize,
            embedded_planar: planar,
            sampled: 0,
        });
    }

    // --- 4. Edge digits + label distribution (message-level). ---
    // Each node numbers its BFS children by rotation order after the
    // parent edge.
    let mut digit_of: Vec<HashMap<u32, u32>> = vec![HashMap::new(); n];
    for v in g.nodes() {
        let order = &rotation_at[v.index()];
        if order.is_empty() {
            continue;
        }
        let children: std::collections::HashSet<u32> =
            bfs.children[v.index()].iter().map(|c| c.raw()).collect();
        let start = match bfs.parent[v.index()] {
            Some(p) => order
                .iter()
                .position(|&w| w == p)
                .map(|i| i + 1)
                .unwrap_or(0),
            None => 0,
        };
        let mut digit = 1u32;
        for k in 0..order.len() {
            let w = order[(start + k) % order.len()];
            if children.contains(&w.raw()) {
                digit_of[v.index()].insert(w.raw(), digit);
                digit += 1;
            }
        }
    }
    let node_labels = distribute_labels(engine, &tree, &digit_of, max_rounds)?;

    // --- 5. Label exchange across assigned non-tree edges. ---
    let other_labels = exchange_edge_labels(engine, g, &assigned, &node_labels, max_rounds)?;

    // Assemble labelled intervals per assigned edge.
    let mut intervals: Vec<Vec<LabeledEdge>> = vec![Vec::new(); n];
    for v in 0..n {
        for (i, _e) in assigned[v].iter().enumerate() {
            let mine = node_labels[v].clone();
            let theirs = Label(other_labels[v][i].clone());
            intervals[v].push(LabeledEdge::new(mine, theirs));
        }
    }

    // Everything up to here is seed-independent: credit the shared cost
    // to every instance in full (the runs are identical per seed, so
    // executing them once is bit-for-bit equivalent).
    let shared_stats = engine.stats().delta_since(&baseline);
    let shared_rejections = rejections;

    // --- 6. Sampling and violation detection (per seed). ---
    let s_target = cfg.sample_size(n) as f64;
    let mut all_sample_items: Vec<Vec<Vec<Msg>>> = Vec::with_capacity(seeds.len());
    let mut all_sampled_per_part: Vec<HashMap<u32, usize>> = Vec::with_capacity(seeds.len());
    for &seed in seeds {
        let mut sample_items: Vec<Vec<Msg>> = vec![Vec::new(); n];
        let mut sampled_per_part: HashMap<u32, usize> = HashMap::new();
        for v in 0..n {
            if assigned[v].is_empty() {
                continue;
            }
            let root = state.root[v].raw();
            let nt = counts_bcast[v].as_ref().expect("counts broadcast").word(2);
            if nt == 0 {
                continue;
            }
            let p = (s_target / nt as f64).min(1.0);
            let mut rng = sample_rng(seed, v as u64);
            for iv in &intervals[v] {
                if rng.random_bool(p) {
                    *sampled_per_part.entry(root).or_insert(0) += 1;
                    sample_items[v].extend(encode_interval(v as u64, iv));
                }
            }
        }
        // Overflow guard (1/poly(n) event per instance): the root would
        // abort; we fail the batch fast so callers can rerun with other
        // seeds.
        for (&root, &count) in &sampled_per_part {
            let budget = (4.0 * s_target).ceil() as usize + 8;
            if count > budget {
                let _ = root;
                return Err(CoreError::SampleOverflow {
                    drawn: count,
                    budget,
                });
            }
        }
        all_sample_items.push(sample_items);
        all_sampled_per_part.push(sampled_per_part);
    }

    // Ship every instance's samples to the roots in lockstep, then
    // broadcast each sample set back down — the only seed-dependent
    // engine runs, multiplexed through the batch executor.
    let collected = crate::comm::up_stream_batch(engine, &tree, all_sample_items, max_rounds)?;
    let mut all_down_payloads: Vec<Vec<Vec<Msg>>> = Vec::with_capacity(seeds.len());
    let mut all_root_samples: Vec<HashMap<u32, Vec<LabeledEdge>>> = Vec::with_capacity(seeds.len());
    for (collected_k, _) in &collected {
        let mut down_payload: Vec<Vec<Msg>> = vec![Vec::new(); n];
        let mut sampled_intervals_at_root: HashMap<u32, Vec<LabeledEdge>> = HashMap::new();
        for &r in &roots {
            let words = decode_streams(&collected_k[r.index()]);
            sampled_intervals_at_root.insert(r.raw(), words.clone());
            down_payload[r.index()] = words
                .iter()
                .flat_map(|iv| encode_interval(r.raw() as u64, iv))
                .collect();
        }
        all_down_payloads.push(down_payload);
        all_root_samples.push(sampled_intervals_at_root);
    }
    let received =
        crate::comm::stream_broadcast_batch(engine, &tree, all_down_payloads, max_rounds)?;

    // Local violation checks, per instance.
    let paper_mode = matches!(cfg.embedding, EmbeddingMode::Demoucron);
    let mut outcomes = Vec::with_capacity(seeds.len());
    let mut stats = Vec::with_capacity(seeds.len());
    for (k, ((_, up_report), (_received_k, down_report))) in
        collected.iter().zip(&received).enumerate()
    {
        let mut rejections = shared_rejections.clone();
        let mut violation_witnesses = Vec::new();
        for v in 0..n {
            if intervals[v].is_empty() {
                continue;
            }
            // The pipelined broadcast delivers each root's sample list
            // down its tree verbatim and in FIFO order, so every member
            // checks against exactly the list already decoded at the
            // root — borrow it instead of re-decoding the received
            // stream at all n nodes (which made the local check rival
            // the engine run itself in the batched sweep).
            let sample: &[LabeledEdge] = &all_root_samples[k][&state.root[v].raw()];
            #[cfg(debug_assertions)]
            if state.root[v].index() != v {
                let rx: Vec<(NodeId, Msg)> = _received_k[v]
                    .iter()
                    .map(|m| (NodeId::new(0), m.clone()))
                    .collect();
                debug_assert_eq!(
                    decode_streams(&rx),
                    sample,
                    "broadcast must deliver the root's sample list verbatim"
                );
            }
            'outer: for iv in &intervals[v] {
                for s in sample {
                    if iv.intersects(s) {
                        violation_witnesses.push(NodeId::new(v));
                        if paper_mode {
                            rejections.push((NodeId::new(v), RejectReason::ViolatingEdge));
                        }
                        break 'outer;
                    }
                }
            }
        }
        rejections.sort_by_key(|&(v, _)| v);
        rejections.dedup_by_key(|&mut (v, _)| v);
        let mut parts = reports.clone();
        for rep in &mut parts {
            rep.sampled = all_sampled_per_part[k]
                .get(&rep.root.raw())
                .copied()
                .unwrap_or(0);
        }
        let mut instance_stats = shared_stats;
        instance_stats.absorb(*up_report);
        instance_stats.absorb(*down_report);
        outcomes.push(Stage2Outcome {
            rejections,
            violation_witnesses,
            parts,
        });
        stats.push(instance_stats);
    }
    Ok(Stage2Batch { outcomes, stats })
}

/// Assigns each intra-part non-tree edge to its higher `(level, id)`
/// endpoint; returns the assigned edge ids per node.
fn assign_non_tree_edges(
    g: &Graph,
    state: &PartitionState,
    bfs: &planartest_sim::bfs::DistBfs,
    levels: &[u64],
) -> Vec<Vec<EdgeId>> {
    let mut assigned: Vec<Vec<EdgeId>> = vec![Vec::new(); g.n()];
    for e in g.edge_ids() {
        let (u, v) = g.endpoints(e);
        if state.root[u.index()] != state.root[v.index()] {
            continue; // cut edge: not part of any Gj
        }
        if bfs.parent[u.index()] == Some(v) || bfs.parent[v.index()] == Some(u) {
            continue; // tree edge
        }
        let key = |x: NodeId| (levels[x.index()], x.raw());
        let owner = if key(u) > key(v) { u } else { v };
        assigned[owner.index()].push(e);
    }
    assigned
}

/// Obtains a rotation for one part: `(rotation, verified planar)`.
///
/// `orig` maps sub-graph node ids back to whole-graph ids (for hints).
fn embed_part(
    cfg: &TesterConfig,
    g: &Graph,
    sub: &Graph,
    orig: &[NodeId],
) -> (RotationSystem, bool) {
    match &cfg.embedding {
        EmbeddingMode::Hint(hint) => {
            // Restrict the whole-graph rotation to the part: planar
            // embeddings stay planar under edge/vertex deletion.
            let mut new_of = vec![usize::MAX; g.n()];
            for (nv, &ov) in orig.iter().enumerate() {
                new_of[ov.index()] = nv;
            }
            let mut orders = Vec::with_capacity(sub.n());
            for v in sub.nodes() {
                let ov = orig[v.index()];
                let mut ord = Vec::new();
                for &e in hint.order_at(ov) {
                    let ow = g.other_endpoint(e, ov);
                    let nw = new_of[ow.index()];
                    if nw != usize::MAX {
                        if let Some(se) = sub.edge_between(v, NodeId::new(nw)) {
                            ord.push(se);
                        }
                    }
                }
                orders.push(ord);
            }
            match RotationSystem::new(sub, orders) {
                Ok(rot) if rot.is_planar_embedding(sub) => (rot, true),
                // Hint did not verify: fall back to the certified embedder
                // so soundness is preserved.
                _ => match check_planarity(sub) {
                    PlanarityCheck::Planar(rot) => (rot, true),
                    PlanarityCheck::NonPlanar => (RotationSystem::from_adjacency(sub), false),
                },
            }
        }
        EmbeddingMode::Demoucron | EmbeddingMode::DemoucronStrict => match check_planarity(sub) {
            PlanarityCheck::Planar(rot) => (rot, true),
            PlanarityCheck::NonPlanar => (RotationSystem::from_adjacency(sub), false),
        },
    }
}

/// Encodes `(origin, interval)` into bandwidth-sized chunks: payload
/// words are the two packed labels
/// ([`labels::pack_label`] — digits ride 16/4/2 to a word instead of
/// one per word), each message is `[origin, w1, w2, w3]`. Packing is
/// what keeps the sample broadcast — the tester's dominant message
/// volume — at the model's `O(log n)`-bits-per-message density.
fn encode_interval(origin: u64, iv: &LabeledEdge) -> Vec<Msg> {
    let mut words: Vec<u64> = Vec::new();
    labels::pack_label(&iv.lo.0, &mut words);
    labels::pack_label(&iv.hi.0, &mut words);
    // Prefix with the total word count so the decoder can frame it.
    let mut framed = vec![words.len() as u64];
    framed.extend(words);
    framed
        .chunks(3)
        .map(|c| {
            let mut w = vec![origin];
            w.extend_from_slice(c);
            Msg::from(w)
        })
        .collect()
}

/// Decodes interleaved chunk streams back into intervals (grouping by the
/// origin word, framing by the length prefix).
fn decode_streams(msgs: &[(NodeId, Msg)]) -> Vec<LabeledEdge> {
    let mut buffers: HashMap<u64, Vec<u64>> = HashMap::new();
    let mut order: Vec<u64> = Vec::new();
    for (_, m) in msgs {
        let w = m.as_words();
        let origin = w[0];
        if !buffers.contains_key(&origin) {
            order.push(origin);
        }
        buffers
            .entry(origin)
            .or_default()
            .extend_from_slice(&w[1..]);
    }
    let mut out = Vec::new();
    for origin in order {
        let words = &buffers[&origin];
        let mut i = 0usize;
        while i < words.len() {
            let total = words[i] as usize;
            let body = &words[i + 1..i + 1 + total];
            i += 1 + total;
            let (lo, used_lo) = labels::unpack_label(body);
            let (hi, used_hi) = labels::unpack_label(&body[used_lo..]);
            debug_assert_eq!(used_lo + used_hi, total, "interval framing corrupted");
            out.push(LabeledEdge {
                lo: Label(lo),
                hi: Label(hi),
            });
        }
    }
    out
}

fn sample_rng(seed: u64, node: u64) -> StdRng {
    let mut x = seed ^ node.wrapping_mul(0xD1B54A32D192ED03);
    x ^= x >> 29;
    x = x.wrapping_mul(0x94D049BB133111EB);
    x ^= x >> 32;
    StdRng::seed_from_u64(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use planartest_graph::generators::{nonplanar, planar};
    use planartest_sim::Engine;
    use planartest_sim::SimConfig;

    fn stage2_singleton_partition(g: &Graph, cfg: &TesterConfig) -> Stage2Outcome {
        // One part covering the whole (connected) graph: root 0 spanning
        // tree discovered by the BFS itself, so seed the state with a
        // valid tree first (use a centralized BFS for the fixture).
        let t = planartest_graph::algo::bfs::BfsTree::build(g, NodeId::new(0));
        let state = PartitionState {
            root: vec![NodeId::new(0); g.n()],
            parent: g.nodes().map(|v| t.parent(v)).collect(),
        };
        let mut engine = Engine::new(g, SimConfig::default());
        run_stage2(&mut engine, cfg, &state).unwrap()
    }

    #[test]
    fn planar_parts_accept() {
        let cfg = TesterConfig::new(0.2);
        for g in [
            planar::grid(7, 7).graph,
            planar::triangulated_grid(6, 6).graph,
            planar::apollonian(60, &mut rng()).graph,
            planar::cycle(17).graph,
            planar::path(9).graph,
        ] {
            let out = stage2_singleton_partition(&g, &cfg);
            assert!(
                out.accepted(),
                "planar graph rejected: {:?}",
                out.rejections
            );
            assert!(out.parts[0].embedded_planar);
        }
    }

    #[test]
    fn dense_part_rejected_by_euler() {
        let g = nonplanar::complete(8).graph;
        let out = stage2_singleton_partition(&g, &TesterConfig::new(0.2));
        assert!(out
            .rejections
            .iter()
            .any(|&(_, r)| r == RejectReason::EulerBound));
    }

    #[test]
    fn k33_rejected_soundly_and_violations_witnessed() {
        // K3,3: 9 edges <= 3*6-6 = 12, so the Euler check is silent. The
        // sound default rejects via the certified embedding failure; the
        // paper-faithful mode rejects via violating edges.
        let g = nonplanar::complete_bipartite(3, 3).graph;
        let out = stage2_singleton_partition(&g, &TesterConfig::new(0.2));
        assert!(!out.accepted(), "K3,3 must be rejected");
        assert!(out
            .rejections
            .iter()
            .any(|&(_, r)| r == RejectReason::EmbeddingFailed));
        assert!(!out.violation_witnesses.is_empty(), "Claim 8 direction");

        let paper = TesterConfig::new(0.2).with_embedding(EmbeddingMode::Demoucron);
        let out = stage2_singleton_partition(&g, &paper);
        assert!(out
            .rejections
            .iter()
            .any(|&(_, r)| r == RejectReason::ViolatingEdge));
    }

    #[test]
    fn petersen_rejected() {
        let outer: Vec<(usize, usize)> = (0..5).map(|i| (i, (i + 1) % 5)).collect();
        let spokes: Vec<(usize, usize)> = (0..5).map(|i| (i, i + 5)).collect();
        let inner: Vec<(usize, usize)> = (0..5).map(|i| (5 + i, 5 + (i + 2) % 5)).collect();
        let edges: Vec<_> = outer.into_iter().chain(spokes).chain(inner).collect();
        let g = Graph::from_edges(10, edges).unwrap();
        let out = stage2_singleton_partition(&g, &TesterConfig::new(0.2));
        assert!(!out.accepted());
    }

    #[test]
    fn strict_mode_rejects_at_embedding() {
        let g = nonplanar::complete_bipartite(3, 3).graph;
        let cfg = TesterConfig::new(0.2).with_embedding(EmbeddingMode::DemoucronStrict);
        let out = stage2_singleton_partition(&g, &cfg);
        assert!(out
            .rejections
            .iter()
            .any(|&(_, r)| r == RejectReason::EmbeddingFailed));
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(2)
    }
}
