//! SWAR digit pack/unpack kernels behind the stage-2 label wire format.
//!
//! The label wire format (`labels::pack_label`, crate-private) ships
//! tree-path digits 16, 4 or 2 per
//! `u64` word (width classes 0, 1, 2 = 4-, 16- and 32-bit digits). The
//! sample-interval streams — the tester's dominant message volume —
//! ride that encoding, so the digit transpose is a hot kernel. This
//! module implements it two ways:
//!
//! * **SWAR** (`*_swar`): digits are combined pairwise inside one u64
//!   register — two 32-bit inputs merge with one shift+or+mask instead
//!   of per-digit shift/or chains, halving the dependent-op count per
//!   digit; width selection is a branch-free OR-reduction over the
//!   digits (valid because the class thresholds are powers of two, so
//!   `max < 2^k  ⇔  or-of-all < 2^k`);
//! * **scalar** (`*_scalar`): the historical one-digit-at-a-time
//!   shift/or loops, kept as the executable reference.
//!
//! Both paths are always compiled; the default dispatch (in
//! `labels.rs`) picks SWAR and the `scalar-kernels` feature flips it to
//! the reference so CI can run the whole suite against either. The
//! `swar_matches_scalar_*` proptests below pin the equivalence for all
//! three width classes, including ragged tails that don't fill a word
//! or a pair.

/// Digit geometry of one width class: `(class_tag, bits_per_digit,
/// digits_per_word)`.
pub type WidthClass = (u64, u32, usize);

/// Selects the width class for a digit slice via a branch-free
/// OR-reduction (the SWAR path: one `or` per digit, compare twice at
/// the end). Because the class thresholds `2^4` and `2^16` are powers
/// of two, the OR of all digits is below a threshold iff the max is.
#[must_use]
pub fn width_class_swar(digits: &[u32]) -> WidthClass {
    let folded = digits.iter().fold(0u32, |acc, &d| acc | d);
    class_for(folded)
}

/// Scalar reference for [`width_class_swar`]: selects from the maximum
/// digit, the definitionally obvious rule.
#[must_use]
pub fn width_class_scalar(digits: &[u32]) -> WidthClass {
    class_for(digits.iter().copied().max().unwrap_or(0))
}

fn class_for(bound: u32) -> WidthClass {
    if bound < 1 << 4 {
        (0, 4, 16)
    } else if bound < 1 << 16 {
        (1, 16, 4)
    } else {
        (2, 32, 2)
    }
}

/// SWAR digit pack: appends `digits` to `out` at `bits` bits per digit,
/// `per` digits per word. Adjacent digits merge pairwise inside one u64
/// (`lo | hi << 32`, then one shift+or+mask compresses the pair to
/// `2·bits` contiguous bits) before the pairs are or-ed into the word —
/// half the dependent shift/or chain of the scalar loop. A ragged final
/// digit (odd pair) falls back to one scalar or.
pub fn pack_swar(digits: &[u32], bits: u32, per: usize, out: &mut Vec<u64>) {
    debug_assert!(matches!((bits, per), (4, 16) | (16, 4) | (32, 2)));
    // Mask of one *pair* (2·bits wide); at 32-bit digits a pair is the
    // whole word.
    let mask = if bits == 32 {
        u64::MAX
    } else {
        (1u64 << (2 * bits)) - 1
    };
    for chunk in digits.chunks(per) {
        let mut word = 0u64;
        let mut pairs = chunk.chunks_exact(2);
        for (j, pair) in pairs.by_ref().enumerate() {
            // lo at bit 0, hi at bit 32 → one >> (32 - bits) folds hi
            // down to bit `bits`; the mask drops the shift residue.
            let spread = u64::from(pair[0]) | (u64::from(pair[1]) << 32);
            let packed = (spread | (spread >> (32 - bits))) & mask;
            word |= packed << (j as u32 * 2 * bits);
        }
        if let [last] = pairs.remainder() {
            word |= u64::from(*last) << ((chunk.len() - 1) as u32 * bits);
        }
        out.push(word);
    }
}

/// Scalar reference for [`pack_swar`]: the historical one-shift-or per
/// digit loop.
pub fn pack_scalar(digits: &[u32], bits: u32, per: usize, out: &mut Vec<u64>) {
    for chunk in digits.chunks(per) {
        let mut word = 0u64;
        for (i, &d) in chunk.iter().enumerate() {
            word |= u64::from(d) << (i as u32 * bits);
        }
        out.push(word);
    }
}

/// SWAR digit unpack: decodes `len` digits packed at `bits` bits per
/// digit, `per` per word, from `words` into `digits`. The inverse
/// pairwise trick: one shift+or+mask spreads two adjacent packed digits
/// to bit 0 and bit 32 of a register, from which both extract with a
/// mask and a shift — versus a dependent shift+mask per digit. A ragged
/// final digit falls back to one scalar extract.
pub fn unpack_swar(words: &[u64], len: usize, bits: u32, per: usize, digits: &mut Vec<u32>) {
    debug_assert!(matches!((bits, per), (4, 16) | (16, 4) | (32, 2)));
    let lane_mask = if bits == 32 {
        u64::from(u32::MAX)
    } else {
        (1u64 << bits) - 1
    };
    let pair_mask = if bits == 32 {
        u64::MAX
    } else {
        (1u64 << (2 * bits)) - 1
    };
    let spread_mask = lane_mask | (lane_mask << 32);
    let mut remaining = len;
    for &word in words {
        let take = remaining.min(per);
        let mut j = 0;
        while j + 2 <= take {
            // Two packed digits at bit `j·bits`, isolated first (later
            // digits would otherwise alias into the hi lane) → lo to
            // bit 0, hi to bit 32 via one << (32 - bits).
            let packed = (word >> (j as u32 * bits)) & pair_mask;
            let spread = (packed | (packed << (32 - bits))) & spread_mask;
            digits.push((spread & lane_mask) as u32);
            digits.push((spread >> 32) as u32);
            j += 2;
        }
        if j < take {
            digits.push(((word >> (j as u32 * bits)) & lane_mask) as u32);
        }
        remaining -= take;
        if remaining == 0 {
            break;
        }
    }
}

/// Scalar reference for [`unpack_swar`]: the historical one-shift-mask
/// per digit loop.
pub fn unpack_scalar(words: &[u64], len: usize, bits: u32, per: usize, digits: &mut Vec<u32>) {
    let mask = if bits == 32 {
        u64::from(u32::MAX)
    } else {
        (1u64 << bits) - 1
    };
    for i in 0..len {
        digits.push(((words[i / per] >> ((i % per) as u32 * bits)) & mask) as u32);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Digit vectors confined to one width class, with lengths that
    /// exercise ragged tails (partial words *and* odd pairs).
    fn digits_in_class(bits: u32) -> impl Strategy<Value = Vec<u32>> {
        let bound = 1u64 << bits; // inclusive of the class max
        prop::collection::vec((0..bound).prop_map(|d| d as u32), 0..70)
    }

    fn roundtrip_case(digits: &[u32], bits: u32, per: usize) {
        let mut swar = Vec::new();
        let mut scalar = Vec::new();
        pack_swar(digits, bits, per, &mut swar);
        pack_scalar(digits, bits, per, &mut scalar);
        assert_eq!(swar, scalar, "pack bits={bits}");
        let mut got_swar = Vec::new();
        let mut got_scalar = Vec::new();
        unpack_swar(&swar, digits.len(), bits, per, &mut got_swar);
        unpack_scalar(&swar, digits.len(), bits, per, &mut got_scalar);
        assert_eq!(got_swar, digits, "unpack_swar bits={bits}");
        assert_eq!(got_scalar, digits, "unpack_scalar bits={bits}");
    }

    proptest! {
        #[test]
        fn swar_matches_scalar_4bit(digits in digits_in_class(4)) {
            roundtrip_case(&digits, 4, 16);
        }

        #[test]
        fn swar_matches_scalar_16bit(digits in digits_in_class(16)) {
            roundtrip_case(&digits, 16, 4);
        }

        #[test]
        fn swar_matches_scalar_32bit(digits in digits_in_class(32)) {
            roundtrip_case(&digits, 32, 2);
        }

        #[test]
        fn width_class_selection_agrees(
            digits in prop::collection::vec((0..1u64 << 32).prop_map(|d| d as u32), 0..40),
        ) {
            prop_assert_eq!(width_class_swar(&digits), width_class_scalar(&digits));
        }
    }

    #[test]
    fn ragged_tails_across_classes() {
        // Deterministic pins for every (class, tail) shape: lengths
        // around word boundaries and odd/even pair splits.
        for &(bits, per) in &[(4u32, 16usize), (16, 4), (32, 2)] {
            for len in 0..(2 * per + 3) {
                let digits: Vec<u32> = (0..len as u32)
                    .map(|i| (i * 7 + 3) & ((1u32 << (bits - 1)) | 1))
                    .collect();
                roundtrip_case(&digits, bits, per);
            }
        }
    }

    #[test]
    fn width_class_boundaries() {
        assert_eq!(width_class_swar(&[]), (0, 4, 16));
        assert_eq!(width_class_swar(&[15]), (0, 4, 16));
        assert_eq!(width_class_swar(&[16]), (1, 16, 4));
        assert_eq!(width_class_swar(&[65_535]), (1, 16, 4));
        assert_eq!(width_class_swar(&[65_536]), (2, 32, 2));
        assert_eq!(width_class_swar(&[u32::MAX]), (2, 32, 2));
    }
}
