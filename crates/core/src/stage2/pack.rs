//! SWAR digit pack/unpack kernels behind the stage-2 label wire format.
//!
//! The label wire format (`labels::pack_label`, crate-private) ships
//! tree-path digits 16, 4 or 2 per
//! `u64` word (width classes 0, 1, 2 = 4-, 16- and 32-bit digits). The
//! sample-interval streams — the tester's dominant message volume —
//! ride that encoding, so the digit transpose is a hot kernel. This
//! module implements it two ways:
//!
//! * **SWAR** (`*_swar`): per width class, a fully unrolled word
//!   gather/scatter. Every digit's `shift+or` term is *independent*, so
//!   the compiler tree-reduces the ors (depth `log₂ per` instead of a
//!   loop-carried chain of length `per`) and the CPU retires several
//!   lanes per cycle — the scalar loop's `word |= d << (i·bits)`
//!   accumulator serializes on `word` every iteration and pays the
//!   induction/bounds bookkeeping besides. Width selection is a
//!   branch-free OR-reduction over the digits (valid because the class
//!   thresholds are powers of two, so `max < 2^k ⇔ or-of-all < 2^k`);
//! * **scalar** (`*_scalar`): the historical one-digit-at-a-time
//!   shift/or loops, kept as the executable reference.
//!
//! Both paths are always compiled; the default dispatch (in
//! `labels.rs`) picks SWAR and the `scalar-kernels` feature flips it to
//! the reference so CI can run the whole suite against either. The
//! `swar_matches_scalar_*` proptests below pin the equivalence for all
//! three width classes, including ragged tails that don't fill a word
//! or a pair.

/// Digit geometry of one width class: `(class_tag, bits_per_digit,
/// digits_per_word)`.
pub type WidthClass = (u64, u32, usize);

/// Selects the width class for a digit slice via a branch-free
/// OR-reduction (the SWAR path: one `or` per digit, compare twice at
/// the end). Because the class thresholds `2^4` and `2^16` are powers
/// of two, the OR of all digits is below a threshold iff the max is.
#[must_use]
pub fn width_class_swar(digits: &[u32]) -> WidthClass {
    let folded = digits.iter().fold(0u32, |acc, &d| acc | d);
    class_for(folded)
}

/// Scalar reference for [`width_class_swar`]: selects from the maximum
/// digit, the definitionally obvious rule.
#[must_use]
pub fn width_class_scalar(digits: &[u32]) -> WidthClass {
    class_for(digits.iter().copied().max().unwrap_or(0))
}

fn class_for(bound: u32) -> WidthClass {
    if bound < 1 << 4 {
        (0, 4, 16)
    } else if bound < 1 << 16 {
        (1, 16, 4)
    } else {
        (2, 32, 2)
    }
}

/// SWAR digit pack: appends `digits` to `out` at `bits` bits per digit,
/// `per` digits per word. Full words use an unrolled gather whose
/// per-digit `shift+or` terms carry no dependency on each other — the
/// ors tree-reduce in `log₂ per` depth where the scalar loop's
/// accumulator chains through all `per` — and a ragged final word falls
/// back to the scalar loop.
pub fn pack_swar(digits: &[u32], bits: u32, per: usize, out: &mut Vec<u64>) {
    debug_assert!(matches!((bits, per), (4, 16) | (16, 4) | (32, 2)));
    match bits {
        4 => {
            let mut chunks = digits.chunks_exact(16);
            for c in chunks.by_ref() {
                let lo = u64::from(c[0])
                    | (u64::from(c[1]) << 4)
                    | (u64::from(c[2]) << 8)
                    | (u64::from(c[3]) << 12)
                    | (u64::from(c[4]) << 16)
                    | (u64::from(c[5]) << 20)
                    | (u64::from(c[6]) << 24)
                    | (u64::from(c[7]) << 28);
                let hi = u64::from(c[8])
                    | (u64::from(c[9]) << 4)
                    | (u64::from(c[10]) << 8)
                    | (u64::from(c[11]) << 12)
                    | (u64::from(c[12]) << 16)
                    | (u64::from(c[13]) << 20)
                    | (u64::from(c[14]) << 24)
                    | (u64::from(c[15]) << 28);
                out.push(lo | (hi << 32));
            }
            pack_scalar(chunks.remainder(), bits, per, out);
        }
        16 => {
            let mut chunks = digits.chunks_exact(4);
            for c in chunks.by_ref() {
                let lo = u64::from(c[0]) | (u64::from(c[1]) << 16);
                let hi = u64::from(c[2]) | (u64::from(c[3]) << 16);
                out.push(lo | (hi << 32));
            }
            pack_scalar(chunks.remainder(), bits, per, out);
        }
        _ => {
            let mut chunks = digits.chunks_exact(2);
            for c in chunks.by_ref() {
                out.push(u64::from(c[0]) | (u64::from(c[1]) << 32));
            }
            pack_scalar(chunks.remainder(), bits, per, out);
        }
    }
}

/// Scalar reference for [`pack_swar`]: the historical one-shift-or per
/// digit loop.
pub fn pack_scalar(digits: &[u32], bits: u32, per: usize, out: &mut Vec<u64>) {
    for chunk in digits.chunks(per) {
        let mut word = 0u64;
        for (i, &d) in chunk.iter().enumerate() {
            word |= u64::from(d) << (i as u32 * bits);
        }
        out.push(word);
    }
}

/// SWAR digit unpack: decodes `len` digits packed at `bits` bits per
/// digit, `per` per word, from `words` into `digits`. Full words
/// scatter through one `extend_from_slice` of independent shift+mask
/// lanes (no per-digit push/capacity check, no dependency between
/// lanes); the ragged final word falls back to the scalar extract loop.
pub fn unpack_swar(words: &[u64], len: usize, bits: u32, per: usize, digits: &mut Vec<u32>) {
    debug_assert!(matches!((bits, per), (4, 16) | (16, 4) | (32, 2)));
    let full = len / per;
    match bits {
        4 => {
            for &w in &words[..full] {
                digits.extend_from_slice(&[
                    (w & 0xF) as u32,
                    ((w >> 4) & 0xF) as u32,
                    ((w >> 8) & 0xF) as u32,
                    ((w >> 12) & 0xF) as u32,
                    ((w >> 16) & 0xF) as u32,
                    ((w >> 20) & 0xF) as u32,
                    ((w >> 24) & 0xF) as u32,
                    ((w >> 28) & 0xF) as u32,
                    ((w >> 32) & 0xF) as u32,
                    ((w >> 36) & 0xF) as u32,
                    ((w >> 40) & 0xF) as u32,
                    ((w >> 44) & 0xF) as u32,
                    ((w >> 48) & 0xF) as u32,
                    ((w >> 52) & 0xF) as u32,
                    ((w >> 56) & 0xF) as u32,
                    (w >> 60) as u32,
                ]);
            }
        }
        16 => {
            for &w in &words[..full] {
                digits.extend_from_slice(&[
                    (w & 0xFFFF) as u32,
                    ((w >> 16) & 0xFFFF) as u32,
                    ((w >> 32) & 0xFFFF) as u32,
                    (w >> 48) as u32,
                ]);
            }
        }
        _ => {
            for &w in &words[..full] {
                digits.extend_from_slice(&[w as u32, (w >> 32) as u32]);
            }
        }
    }
    let tail = len % per;
    if tail > 0 {
        let mask = if bits == 32 {
            u64::from(u32::MAX)
        } else {
            (1u64 << bits) - 1
        };
        let word = words[full];
        for j in 0..tail {
            digits.push(((word >> (j as u32 * bits)) & mask) as u32);
        }
    }
}

/// Scalar reference for [`unpack_swar`]: the historical one-shift-mask
/// per digit loop.
pub fn unpack_scalar(words: &[u64], len: usize, bits: u32, per: usize, digits: &mut Vec<u32>) {
    let mask = if bits == 32 {
        u64::from(u32::MAX)
    } else {
        (1u64 << bits) - 1
    };
    for i in 0..len {
        digits.push(((words[i / per] >> ((i % per) as u32 * bits)) & mask) as u32);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Digit vectors confined to one width class, with lengths that
    /// exercise ragged tails (partial words *and* odd pairs).
    fn digits_in_class(bits: u32) -> impl Strategy<Value = Vec<u32>> {
        let bound = 1u64 << bits; // inclusive of the class max
        prop::collection::vec((0..bound).prop_map(|d| d as u32), 0..70)
    }

    fn roundtrip_case(digits: &[u32], bits: u32, per: usize) {
        let mut swar = Vec::new();
        let mut scalar = Vec::new();
        pack_swar(digits, bits, per, &mut swar);
        pack_scalar(digits, bits, per, &mut scalar);
        assert_eq!(swar, scalar, "pack bits={bits}");
        let mut got_swar = Vec::new();
        let mut got_scalar = Vec::new();
        unpack_swar(&swar, digits.len(), bits, per, &mut got_swar);
        unpack_scalar(&swar, digits.len(), bits, per, &mut got_scalar);
        assert_eq!(got_swar, digits, "unpack_swar bits={bits}");
        assert_eq!(got_scalar, digits, "unpack_scalar bits={bits}");
    }

    proptest! {
        #[test]
        fn swar_matches_scalar_4bit(digits in digits_in_class(4)) {
            roundtrip_case(&digits, 4, 16);
        }

        #[test]
        fn swar_matches_scalar_16bit(digits in digits_in_class(16)) {
            roundtrip_case(&digits, 16, 4);
        }

        #[test]
        fn swar_matches_scalar_32bit(digits in digits_in_class(32)) {
            roundtrip_case(&digits, 32, 2);
        }

        #[test]
        fn width_class_selection_agrees(
            digits in prop::collection::vec((0..1u64 << 32).prop_map(|d| d as u32), 0..40),
        ) {
            prop_assert_eq!(width_class_swar(&digits), width_class_scalar(&digits));
        }
    }

    #[test]
    fn ragged_tails_across_classes() {
        // Deterministic pins for every (class, tail) shape: lengths
        // around word boundaries and odd/even pair splits.
        for &(bits, per) in &[(4u32, 16usize), (16, 4), (32, 2)] {
            for len in 0..(2 * per + 3) {
                let digits: Vec<u32> = (0..len as u32)
                    .map(|i| (i * 7 + 3) & ((1u32 << (bits - 1)) | 1))
                    .collect();
                roundtrip_case(&digits, bits, per);
            }
        }
    }

    #[test]
    fn width_class_boundaries() {
        assert_eq!(width_class_swar(&[]), (0, 4, 16));
        assert_eq!(width_class_swar(&[15]), (0, 4, 16));
        assert_eq!(width_class_swar(&[16]), (1, 16, 4));
        assert_eq!(width_class_swar(&[65_535]), (1, 16, 4));
        assert_eq!(width_class_swar(&[65_536]), (2, 32, 2));
        assert_eq!(width_class_swar(&[u32::MAX]), (2, 32, 2));
    }
}
