//! Multi-phase partition invariants under the Lemma 6 discipline, across
//! both the deterministic and randomized variants and many seeds.

use planartest_core::oracle::audit_partition;
use planartest_core::partition::randomized::{run_randomized_partition, RandomPartitionConfig};
use planartest_core::partition::run_partition;
use planartest_core::TesterConfig;
use planartest_graph::generators::planar;
use planartest_sim::{Engine, SimConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn deterministic_partition_invariants_over_seeds() {
    for seed in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = planar::random_planar(120, 0.85, &mut rng).graph;
        let cfg = TesterConfig::new(0.15).with_phases(7);
        let mut engine = Engine::new(&g, SimConfig::default());
        let p = run_partition(&mut engine, &cfg).expect("partition");
        assert!(p.completed_successfully(), "planar input cannot reject");
        let audit = audit_partition(&g, &p);
        assert!(audit.parts_connected, "seed {seed}: disconnected part");
        // Roots are self-rooted; parents stay inside parts.
        for v in g.nodes() {
            let r = p.state.root[v.index()];
            assert_eq!(p.state.root[r.index()], r);
            if let Some(par) = p.state.parent[v.index()] {
                assert_eq!(p.state.root[par.index()], r, "parent left the part");
            } else {
                assert_eq!(r, v, "only roots lack parents");
            }
        }
        // Cut weight monotonically non-increasing over phases.
        let mut prev = g.m() as u64;
        for ph in &p.phases {
            assert!(ph.cut_weight <= prev);
            prev = ph.cut_weight;
        }
    }
}

#[test]
fn randomized_partition_invariants_over_seeds() {
    for seed in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(100 + seed);
        let g = planar::apollonian(100, &mut rng).graph;
        let cfg = RandomPartitionConfig::new(0.2, 0.25)
            .with_phases(6)
            .with_seed(seed);
        let mut engine = Engine::new(&g, SimConfig::default());
        let p = run_randomized_partition(&mut engine, &cfg).expect("partition");
        let audit = audit_partition(&g, &p);
        assert!(audit.parts_connected, "seed {seed}");
        assert!(p.state.part_count() >= 1);
        // Theorem 4 never rejects.
        assert!(p.completed_successfully());
    }
}

/// Round accounting sanity: both simulated and charged rounds accrue,
/// and both scale with part depth. (On planar inputs the peeling
/// quiesces in one or two super-rounds — every low-degree part
/// deactivates immediately — so the *charged* merging hops can dominate;
/// on dense inputs the simulated peeling dominates instead. DESIGN.md §2
/// documents this split.)
#[test]
fn round_accounting_accrues_on_both_sides() {
    let g = planar::triangulated_grid(12, 12).graph;
    let cfg = TesterConfig::new(0.15).with_phases(6);
    let mut engine = Engine::new(&g, SimConfig::default());
    let _ = run_partition(&mut engine, &cfg).expect("partition");
    let s = engine.stats();
    assert!(s.rounds > 0, "peeling/election must simulate real rounds");
    assert!(s.charged_rounds > 0, "merging hops must be charged");
    assert!(s.messages > 0 && s.words >= s.messages / 4);
}
