//! Failure-injection tests: wrong hints, tight bandwidth, and adversarial
//! configurations must degrade soundly (never break one-sidedness, never
//! panic).

use planartest_core::{EmbeddingMode, PlanarityTester, TesterConfig};
use planartest_embed::RotationSystem;
use planartest_graph::generators::{nonplanar, planar};
use planartest_sim::SimConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A *wrong* hint (adjacency-order rotation, almost never planar for a
/// tri-grid) must not make the tester reject a planar graph: the hint
/// fails verification per part and the certified embedder takes over.
#[test]
fn bogus_hint_falls_back_soundly() {
    let fam = planar::triangulated_grid(7, 7);
    let bogus = RotationSystem::from_adjacency(&fam.graph);
    let cfg = TesterConfig::new(0.15)
        .with_phases(6)
        .with_embedding(EmbeddingMode::Hint(bogus));
    let out = PlanarityTester::new(cfg).run(&fam.graph).expect("run");
    assert!(
        out.accepted(),
        "wrong hint must not break completeness: {:?}",
        out.rejections
    );
}

/// A wrong hint on a far graph must still reject (fallback certifies).
#[test]
fn bogus_hint_keeps_soundness() {
    let mut rng = StdRng::seed_from_u64(9);
    let far = nonplanar::planar_plus_chords(60, 60, &mut rng);
    let bogus = RotationSystem::from_adjacency(&far.graph);
    let cfg = TesterConfig::new(0.05)
        .with_phases(6)
        .with_embedding(EmbeddingMode::Hint(bogus));
    let out = PlanarityTester::new(cfg).run(&far.graph).expect("run");
    assert!(!out.accepted());
}

/// Bandwidth below the protocol's needs is a hard, attributable error —
/// not silent corruption.
#[test]
fn insufficient_bandwidth_is_loud() {
    let fam = planar::grid(5, 5);
    let cfg = TesterConfig::new(0.2).with_phases(4);
    let err = PlanarityTester::new(cfg)
        .with_sim_config(SimConfig {
            max_words_per_message: 1,
            ..SimConfig::default()
        })
        .run(&fam.graph)
        .expect_err("1-word bandwidth cannot carry BFS offers");
    assert!(err.to_string().contains("bandwidth"));
}

/// Degenerate inputs: empty and single-node graphs accept trivially.
#[test]
fn degenerate_inputs() {
    for n in [1usize, 2, 3] {
        let g = planartest_graph::Graph::empty(n);
        let out = PlanarityTester::new(TesterConfig::new(0.5).with_phases(2))
            .run(&g)
            .expect("run");
        assert!(out.accepted());
    }
}

/// Extreme epsilon values behave: large eps = very few phases; small eps
/// = many phases, still correct on a small planar input.
#[test]
fn epsilon_extremes() {
    let fam = planar::cycle(12);
    for eps in [0.9, 0.01] {
        let out = PlanarityTester::new(TesterConfig::new(eps).with_phases(3))
            .run(&fam.graph)
            .expect("run");
        assert!(out.accepted(), "eps={eps}");
    }
}
