//! Regression test pinning the reproduction's headline finding: Claim 10
//! of Levi-Medina-Ron (PODC 2018) is false as stated. A 7-node planar
//! graph admits a BFS tree under which *every* embedding-derived
//! labelling contains a violating (Definition 7) edge pair, so the
//! paper-faithful Stage II can reject planar inputs. See EXPERIMENTS.md
//! E6 for the analysis and the sound fix used by the default tester.

use planartest_core::oracle::{count_violating_edges, non_tree_intervals};
use planartest_core::{EmbeddingMode, PlanarityTester, TesterConfig};
use planartest_embed::demoucron::check_planarity;
use planartest_graph::{Graph, NodeId};

/// The minimal counterexample found by the debug sweep: an Apollonian
/// network on 7 nodes. Vertex 6 is stacked into face {1, 2, 5}; with BFS
/// root 0, vertex 6's parent is 1, and the pairs (6,2)x(1,5) and
/// (6,5)x(1,2) cannot both be non-interleaving: the first requires
/// l(5) < l(2), the second l(2) < l(5).
fn counterexample() -> Graph {
    Graph::from_edges(
        7,
        [
            (0, 1),
            (0, 2),
            (0, 3),
            (0, 4),
            (0, 5),
            (1, 2),
            (1, 3),
            (1, 4),
            (1, 5),
            (1, 6),
            (2, 3),
            (2, 5),
            (2, 6),
            (3, 4),
            (5, 6),
        ],
    )
    .expect("valid edge list")
}

#[test]
fn planar_counterexample_has_violations_under_every_embedding() {
    let g = counterexample();
    let rot = check_planarity(&g)
        .into_rotation()
        .expect("the graph is planar");
    assert!(
        rot.is_planar_embedding(&g),
        "embedding must verify via Euler"
    );
    let ivs = non_tree_intervals(&g, &rot, NodeId::new(0));
    assert!(
        count_violating_edges(&ivs) > 0,
        "Claim 10 predicted zero violations; the counterexample must refute it"
    );
}

#[test]
fn sound_default_mode_still_accepts_the_counterexample() {
    let g = counterexample();
    let out = PlanarityTester::new(TesterConfig::new(0.2).with_phases(4))
        .run(&g)
        .expect("tester runs");
    assert!(
        out.accepted(),
        "the sound tester must accept planar inputs: {:?}",
        out.rejections
    );
    // The violation witnesses may be non-empty — that is the refutation
    // being observed at runtime without breaking one-sidedness.
}

#[test]
fn paper_mode_can_reject_the_planar_counterexample() {
    // Demonstrates *why* the paper-faithful mode is not one-sided: with
    // enough samples the violating pair is found on a planar graph.
    let g = counterexample();
    let cfg = TesterConfig::new(0.05)
        .with_phases(4)
        .with_embedding(EmbeddingMode::Demoucron);
    let out = PlanarityTester::new(cfg).run(&g).expect("tester runs");
    // Whether it rejects depends on which part the partition formed and
    // what got sampled; across seeds at least one rejection must appear.
    let mut any_reject = !out.accepted();
    for seed in 0..20u64 {
        let cfg = TesterConfig::new(0.05)
            .with_phases(4)
            .with_seed(seed)
            .with_embedding(EmbeddingMode::Demoucron);
        if !PlanarityTester::new(cfg).run(&g).expect("runs").accepted() {
            any_reject = true;
        }
    }
    assert!(
        any_reject,
        "expected the paper-faithful mode to exhibit a false rejection on some seed"
    );
}
