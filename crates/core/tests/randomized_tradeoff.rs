//! Theorem 4's trade-off, end to end: the randomized partition must use
//! substantially fewer rounds than the deterministic Stage I on the same
//! input while reaching a comparable cut, and more trials (smaller delta)
//! must never *hurt* the selected edge weights.

use planartest_core::partition::randomized::{run_randomized_partition, RandomPartitionConfig};
use planartest_core::partition::run_partition;
use planartest_core::TesterConfig;
use planartest_graph::generators::planar;
use planartest_sim::{Engine, SimConfig};

#[test]
fn randomized_uses_fewer_rounds_at_comparable_cut() {
    let g = planar::triangulated_grid(14, 14).graph;
    let det_cfg = TesterConfig::new(0.1).with_phases(8);
    let mut det_engine = Engine::new(&g, SimConfig::default());
    let det = run_partition(&mut det_engine, &det_cfg).expect("det");
    let det_rounds = det_engine.stats().total_rounds();
    let det_cut = det.state.cut_weight(&g);

    let rcfg = RandomPartitionConfig::new(0.1, 0.2)
        .with_phases(8)
        .with_seed(1);
    let mut r_engine = Engine::new(&g, SimConfig::default());
    let rnd = run_randomized_partition(&mut r_engine, &rcfg).expect("rand");
    let rnd_rounds = r_engine.stats().total_rounds();
    let rnd_cut = rnd.state.cut_weight(&g);

    assert!(
        rnd_rounds * 2 < det_rounds,
        "randomized should be much cheaper: {rnd_rounds} vs {det_rounds}"
    );
    // Comparable quality: within a generous constant factor (both usually
    // reach very small cuts; avoid div-by-zero).
    assert!(
        rnd_cut <= 4 * det_cut + g.m() as u64 / 10,
        "randomized cut {rnd_cut} far worse than deterministic {det_cut}"
    );
}

#[test]
fn delta_monotonicity_in_trials() {
    let loose = RandomPartitionConfig::new(0.1, 0.5);
    let tight = RandomPartitionConfig::new(0.1, 0.01);
    assert!(tight.trials() > loose.trials());
}
