//! Property-based tests for the graph substrate.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use planartest_graph::algo::arboricity::{degeneracy, density_lower_bound, peel};
use planartest_graph::algo::bfs::{component_diameter, distances, BfsTree};
use planartest_graph::algo::bipartite::check_bipartite;
use planartest_graph::algo::components::Components;
use planartest_graph::algo::girth::{break_short_cycles, girth};
use planartest_graph::disk::{self, DiskError};
use planartest_graph::generators::{nonplanar, planar};
use planartest_graph::{io, Graph, NodeId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (
        2usize..40,
        prop::collection::vec((0usize..40, 0usize..40), 0..120),
    )
        .prop_map(|(n, pairs)| {
            let mut b = planartest_graph::GraphBuilder::new(n);
            for (u, v) in pairs {
                let (u, v) = (u % n, v % n);
                if u != v {
                    b.add_edge(u, v).expect("in range");
                }
            }
            b.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Edge-list serialization round-trips.
    #[test]
    fn io_roundtrip(g in arb_graph()) {
        let text = io::to_edge_list(&g);
        let h = io::from_edge_list(&text).expect("own output parses");
        prop_assert_eq!(g, h);
    }

    /// CSR layout invariants against a naive reference adjacency built
    /// from the edge list: per-row sortedness (strict — no duplicate
    /// neighbours), degrees, `max_degree`, and `has_edge`/`edge_between`
    /// symmetry across the builder/CSR boundary.
    #[test]
    fn csr_matches_reference_adjacency(g in arb_graph()) {
        let mut reference: Vec<Vec<usize>> = vec![Vec::new(); g.n()];
        for (u, v) in g.edges() {
            reference[u.index()].push(v.index());
            reference[v.index()].push(u.index());
        }
        for row in &mut reference {
            row.sort_unstable();
        }
        let mut max_deg = 0;
        for v in g.nodes() {
            let row: Vec<usize> = g.neighbors(v).iter().map(|&(w, _)| w.index()).collect();
            prop_assert!(
                row.windows(2).all(|p| p[0] < p[1]),
                "row {} not strictly sorted: {:?}",
                v,
                row
            );
            prop_assert_eq!(&row, &reference[v.index()]);
            prop_assert_eq!(g.degree(v), row.len());
            max_deg = max_deg.max(row.len());
            for &(w, e) in g.neighbors(v) {
                prop_assert_eq!(g.edge_between(v, w), Some(e));
                prop_assert_eq!(g.edge_between(w, v), Some(e));
                prop_assert!(g.has_edge(v, w) && g.has_edge(w, v));
            }
        }
        prop_assert_eq!(g.max_degree(), max_deg);
        // Negative membership agrees with the reference (first few rows
        // keep the quadratic probe cheap).
        for u in g.nodes().take(12) {
            for w in g.nodes().take(12) {
                let expected = u != w && reference[u.index()].binary_search(&w.index()).is_ok();
                prop_assert_eq!(g.has_edge(u, w), expected);
            }
        }
    }

    /// Handshake lemma: degree sum = 2m, and adjacency is symmetric.
    #[test]
    fn degrees_consistent(g in arb_graph()) {
        let sum: usize = g.nodes().map(|v| g.degree(v)).sum();
        prop_assert_eq!(sum, 2 * g.m());
        for v in g.nodes() {
            for &(w, e) in g.neighbors(v) {
                prop_assert!(g.neighbors(w).iter().any(|&(x, f)| x == v && f == e));
            }
        }
    }

    /// BFS levels differ by at most 1 across any edge, and distances obey
    /// the triangle inequality through any intermediate vertex.
    #[test]
    fn bfs_levels_lipschitz(g in arb_graph()) {
        let t = BfsTree::build(&g, NodeId::new(0));
        for (u, v) in g.edges() {
            if let (Some(a), Some(b)) = (t.level(u), t.level(v)) {
                prop_assert!(a.abs_diff(b) <= 1, "edge levels {a} vs {b}");
            } else {
                prop_assert_eq!(t.level(u).is_some(), t.level(v).is_some());
            }
        }
        let d = distances(&g, NodeId::new(0));
        for v in g.nodes() {
            prop_assert_eq!(d[v.index()], t.level(v));
        }
    }

    /// Component counts: n - (number of tree edges over all BFS forests).
    #[test]
    fn components_match_bfs(g in arb_graph()) {
        let cc = Components::build(&g);
        let mut seen = vec![false; g.n()];
        let mut comps = 0;
        for v in g.nodes() {
            if !seen[v.index()] {
                comps += 1;
                let t = BfsTree::build(&g, v);
                for &w in t.order() {
                    seen[w.index()] = true;
                    prop_assert_eq!(cc.component_of(w), cc.component_of(v));
                }
            }
        }
        prop_assert_eq!(cc.count(), comps);
    }

    /// Degeneracy bounds: density lower bound / 2 <= ... <= max degree,
    /// and planar graphs have degeneracy <= 5.
    #[test]
    fn degeneracy_bounds(seed in 0u64..4000, n in 4usize..60) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = planar::apollonian(n.max(3), &mut rng).graph;
        let (d, order) = degeneracy(&g);
        prop_assert!(d <= 5, "planar degeneracy {d} > 5");
        prop_assert!(d >= density_lower_bound(&g).saturating_sub(1) / 2);
        prop_assert_eq!(order.len(), g.n());
    }

    /// Peeling with alpha=3 empties planar graphs within O(log n) rounds.
    #[test]
    fn peeling_terminates_on_planar(seed in 0u64..4000, n in 4usize..60) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = planar::random_planar(n.max(3), 0.8, &mut rng).graph;
        let rounds = 4 * (g.n().max(2) as u32).ilog2() + 4;
        let out = peel(&g, 3, rounds);
        prop_assert_eq!(out.survivors, 0);
    }

    /// Girth: break_short_cycles really raises girth above the bound.
    #[test]
    fn short_cycle_breaking(seed in 0u64..4000, bound in 4u32..8) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = nonplanar::gnp(60, 5.0 / 60.0, &mut rng).graph;
        let (h, _removed) = break_short_cycles(&g, bound);
        if let Some(girth) = girth(&h) {
            prop_assert!(girth >= bound, "girth {girth} < bound {bound}");
        }
        prop_assert!(h.m() <= g.m());
    }

    /// Bipartite check agrees with odd-girth.
    #[test]
    fn bipartite_iff_no_odd_cycle(g in arb_graph()) {
        let bip = check_bipartite(&g).is_bipartite();
        // Exhaustive check via girth of odd cycles: use 2-colouring as
        // ground truth on small graphs by brute force over components.
        let ground = brute_force_bipartite(&g);
        prop_assert_eq!(bip, ground);
    }

    /// Trees: diameter equals longest path; girth is None.
    #[test]
    fn tree_properties(seed in 0u64..4000, n in 2usize..50) {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = planar::random_tree(n, &mut rng).graph;
        prop_assert_eq!(t.m(), n - 1);
        prop_assert!(girth(&t).is_none());
        let d = component_diameter(&t, NodeId::new(0));
        prop_assert!((d as usize) < n);
    }
}

/// A scratch `.csr` path unique per proptest case (the proptests run on
/// parallel test threads, so a shared fixed path would race).
fn scratch_csr() -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let id = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "planartest-proptest-{}-{id}.csr",
        std::process::id()
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// On-disk CSR round-trip over arbitrary graphs: `save` →
    /// `load_mapped`/`load_resident` reproduces the graph bit for bit
    /// (structure, fingerprint, every adjacency row), and re-saving the
    /// mapped load reproduces the file bytes exactly — the format is
    /// canonical, so content-addressing by fingerprint is sound.
    #[test]
    fn disk_roundtrip_bit_identical(g in arb_graph()) {
        let path = scratch_csr();
        let fp = disk::save(&g, &path).expect("save");
        prop_assert_eq!(fp, g.fingerprint());
        let mapped = disk::load_mapped(&path).expect("mapped load");
        let resident = disk::load_resident(&path).expect("resident load");
        prop_assert!(mapped.is_mapped());
        prop_assert!(!resident.is_mapped());
        for h in [&mapped, &resident] {
            prop_assert_eq!(h, &g);
            prop_assert_eq!(h.fingerprint(), g.fingerprint());
            for v in g.nodes() {
                prop_assert_eq!(h.neighbors(v), g.neighbors(v));
            }
        }
        let bytes = std::fs::read(&path).expect("read back");
        let repath = scratch_csr();
        disk::save(&mapped, &repath).expect("re-save mapped load");
        prop_assert_eq!(std::fs::read(&repath).expect("read re-save"), bytes);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&repath);
    }

    /// Corrupting any single byte of a saved CSR never panics the
    /// loader: it either surfaces a typed [`DiskError`] or — only when
    /// the flip landed in bytes with no semantic weight — still yields
    /// the original graph. A flip that silently *changes* the graph
    /// would be a checksum hole.
    #[test]
    fn disk_corruption_is_typed_never_silent(
        g in arb_graph(),
        pos in 0usize..4096,
        xor in 1u32..256,
    ) {
        let xor = xor as u8;
        let path = scratch_csr();
        disk::save(&g, &path).expect("save");
        let mut bytes = std::fs::read(&path).expect("read");
        let pos = pos % bytes.len();
        bytes[pos] ^= xor;
        std::fs::write(&path, &bytes).expect("rewrite");
        match disk::load_mapped(&path) {
            Ok(h) => prop_assert_eq!(h, g, "corruption at byte {} went undetected", pos),
            Err(
                DiskError::BadMagic
                | DiskError::WrongEndian
                | DiskError::BadVersion { .. }
                | DiskError::Truncated { .. }
                | DiskError::Corrupt { .. }
                | DiskError::FingerprintMismatch { .. },
            ) => {}
            Err(other) => prop_assert!(false, "unexpected error class: {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    /// Truncating a saved CSR at any prefix length is always a typed
    /// error (never a panic, never a silently short graph).
    #[test]
    fn disk_truncation_is_typed(g in arb_graph(), cut in 0usize..4096) {
        let path = scratch_csr();
        disk::save(&g, &path).expect("save");
        let bytes = std::fs::read(&path).expect("read");
        let cut = cut % bytes.len();
        std::fs::write(&path, &bytes[..cut]).expect("truncate");
        let err = disk::load_mapped(&path).expect_err("truncated file must not load");
        prop_assert!(
            matches!(
                err,
                DiskError::Truncated { .. } | DiskError::BadMagic | DiskError::WrongEndian
            ),
            "unexpected error for cut at {}: {:?}",
            cut,
            err
        );
        let _ = std::fs::remove_file(&path);
    }
}

fn brute_force_bipartite(g: &Graph) -> bool {
    // BFS 2-colouring is itself the standard algorithm; as an independent
    // ground truth, try all 2^n colourings for tiny graphs, else trust a
    // DFS colouring implemented differently.
    if g.n() <= 12 {
        'outer: for mask in 0u32..(1 << g.n()) {
            for (u, v) in g.edges() {
                if (mask >> u.index()) & 1 == (mask >> v.index()) & 1 {
                    continue 'outer;
                }
            }
            return true;
        }
        false
    } else {
        // DFS-based colouring.
        let mut color = vec![None; g.n()];
        for s in g.nodes() {
            if color[s.index()].is_some() {
                continue;
            }
            color[s.index()] = Some(false);
            let mut stack = vec![s];
            while let Some(u) = stack.pop() {
                let cu = color[u.index()].expect("pushed nodes are coloured");
                for &(w, _) in g.neighbors(u) {
                    match color[w.index()] {
                        None => {
                            color[w.index()] = Some(!cu);
                            stack.push(w);
                        }
                        Some(cw) if cw == cu => return false,
                        Some(_) => {}
                    }
                }
            }
        }
        true
    }
}
