//! Classic centralized graph algorithms used as substrates and oracles.
//!
//! Everything here is *centralized* (sequential) code: it is used by the
//! distributed algorithms only for node-local computation (which is free in
//! the CONGEST model) and by test oracles that audit distributed outcomes.

pub mod arboricity;
pub mod bfs;
pub mod biconnected;
pub mod bipartite;
pub mod components;
pub mod dfs;
pub mod girth;
pub mod union_find;
