//! Girth (shortest cycle) computation and short-cycle elimination.
//!
//! Used by the lower-bound construction of Theorem 2: the `G(n, p)` graph
//! must have every cycle shorter than `log(n)/c` broken by removing one
//! edge per cycle (Claim 12).

use std::collections::VecDeque;

use crate::{EdgeId, Graph, NodeId};

/// Returns the girth of `g` (length of its shortest cycle), or `None` if
/// `g` is a forest.
///
/// Runs a truncated BFS from every node: `O(n·m)` worst case, fine for the
/// experiment sizes here.
pub fn girth(g: &Graph) -> Option<u32> {
    let mut best: Option<u32> = None;
    let mut dist = vec![u32::MAX; g.n()];
    let mut par = vec![u32::MAX; g.n()];
    let mut touched: Vec<usize> = Vec::new();
    for s in g.nodes() {
        let cap = best.map(|b| b / 2).unwrap_or(u32::MAX);
        let mut q = VecDeque::new();
        dist[s.index()] = 0;
        par[s.index()] = u32::MAX;
        touched.push(s.index());
        q.push_back(s);
        while let Some(u) = q.pop_front() {
            let du = dist[u.index()];
            if du >= cap {
                break;
            }
            for &(w, _) in g.neighbors(u) {
                if dist[w.index()] == u32::MAX {
                    dist[w.index()] = du + 1;
                    par[w.index()] = u.raw();
                    touched.push(w.index());
                    q.push_back(w);
                } else if par[u.index()] != w.raw() {
                    // Cycle through s of length dist(u) + dist(w) + 1.
                    let len = du + dist[w.index()] + 1;
                    best = Some(best.map_or(len, |b| b.min(len)));
                }
            }
        }
        for &t in &touched {
            dist[t] = u32::MAX;
            par[t] = u32::MAX;
        }
        touched.clear();
    }
    best
}

/// Finds a cycle of length `< bound` if one exists, returned as a list of
/// edge ids, or `None` otherwise.
pub fn find_short_cycle(g: &Graph, bound: u32) -> Option<Vec<EdgeId>> {
    if bound <= 3 {
        // A simple graph has no cycle of length < 3.
        return None;
    }
    for s in g.nodes() {
        if let Some(cycle) = short_cycle_from(g, s, bound) {
            return Some(cycle);
        }
    }
    None
}

/// Truncated BFS from `s`; on finding a non-tree edge closing a cycle of
/// length `< bound` *through levels seen so far*, reconstructs it.
fn short_cycle_from(g: &Graph, s: NodeId, bound: u32) -> Option<Vec<EdgeId>> {
    let n = g.n();
    let mut dist = vec![u32::MAX; n];
    let mut parent = vec![None::<(NodeId, EdgeId)>; n];
    let mut q = VecDeque::new();
    dist[s.index()] = 0;
    q.push_back(s);
    while let Some(u) = q.pop_front() {
        let du = dist[u.index()];
        if 2 * du + 1 >= bound {
            break;
        }
        for &(w, e) in g.neighbors(u) {
            if dist[w.index()] == u32::MAX {
                dist[w.index()] = du + 1;
                parent[w.index()] = Some((u, e));
                q.push_back(w);
            } else if parent[u.index()].map(|(p, _)| p) != Some(w)
                && dist[w.index()] + du + 1 < bound
            {
                // Reconstruct the closed walk u -> s -> w plus edge (w, u);
                // trim at the lowest common prefix to get a simple cycle.
                return Some(reconstruct_cycle(g, &parent, u, w, e));
            }
        }
    }
    None
}

fn reconstruct_cycle(
    g: &Graph,
    parent: &[Option<(NodeId, EdgeId)>],
    u: NodeId,
    w: NodeId,
    closing: EdgeId,
) -> Vec<EdgeId> {
    let path = |mut v: NodeId| {
        let mut nodes = vec![v];
        let mut edges = Vec::new();
        while let Some((p, e)) = parent[v.index()] {
            nodes.push(p);
            edges.push(e);
            v = p;
        }
        (nodes, edges)
    };
    let (nu, eu) = path(u);
    let (nw, ew) = path(w);
    // Find the lowest common ancestor: deepest node present in both paths.
    let mut on_u = vec![false; g.n()];
    for &x in &nu {
        on_u[x.index()] = true;
    }
    let mut lca_pos_w = nw.len() - 1;
    for (i, &x) in nw.iter().enumerate() {
        if on_u[x.index()] {
            lca_pos_w = i;
            break;
        }
    }
    let lca = nw[lca_pos_w];
    let lca_pos_u = nu
        .iter()
        .position(|&x| x == lca)
        .expect("lca on both paths");
    let mut cycle = Vec::with_capacity(lca_pos_u + lca_pos_w + 1);
    cycle.extend_from_slice(&eu[..lca_pos_u]);
    cycle.extend_from_slice(&ew[..lca_pos_w]);
    cycle.push(closing);
    cycle
}

/// Removes one edge from each cycle of length `< bound` (Claim 12's
/// operation), returning the new graph and the number of removed edges.
///
/// Iterates "find a short cycle, delete one of its edges" until no cycle
/// shorter than `bound` remains.
pub fn break_short_cycles(g: &Graph, bound: u32) -> (Graph, usize) {
    let mut removed = vec![false; g.m()];
    let mut removed_count = 0;
    let mut cur = g.clone();
    // Map from current edge ids back to original ids.
    let mut back: Vec<EdgeId> = g.edge_ids().collect();
    loop {
        match find_short_cycle(&cur, bound) {
            None => break,
            Some(cycle) => {
                let victim = cycle[0];
                removed[back[victim.index()].index()] = true;
                removed_count += 1;
                let (next, map) = cur.edge_subgraph(|e| e != victim);
                back = map.iter().map(|&e| back[e.index()]).collect();
                cur = next;
            }
        }
    }
    (cur, removed_count)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle_graph(n: usize) -> Graph {
        Graph::from_edges(n, (0..n).map(|i| (i, (i + 1) % n))).unwrap()
    }

    #[test]
    fn girth_of_cycles() {
        for n in [3usize, 4, 5, 8, 13] {
            assert_eq!(girth(&cycle_graph(n)), Some(n as u32), "C{n}");
        }
    }

    #[test]
    fn girth_of_forest_none() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (1, 3), (3, 4)]).unwrap();
        assert_eq!(girth(&g), None);
        assert!(find_short_cycle(&g, 100).is_none());
    }

    #[test]
    fn girth_of_k4() {
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]).unwrap();
        assert_eq!(girth(&g), Some(3));
    }

    #[test]
    fn girth_two_cycles_takes_min() {
        // C3 and C5 sharing nothing.
        let mut edges: Vec<(usize, usize)> = vec![(0, 1), (1, 2), (2, 0)];
        edges.extend((3..8).map(|i| (i, if i == 7 { 3 } else { i + 1 })));
        let g = Graph::from_edges(8, edges).unwrap();
        assert_eq!(girth(&g), Some(3));
    }

    #[test]
    fn find_short_cycle_returns_valid_cycle() {
        let g = cycle_graph(6);
        let c = find_short_cycle(&g, 7).expect("C6 has a cycle shorter than 7");
        assert_eq!(c.len(), 6);
        // Cycle validity: every node incident to exactly 0 or 2 cycle edges.
        let mut deg = vec![0; g.n()];
        for &e in &c {
            let (u, v) = g.endpoints(e);
            deg[u.index()] += 1;
            deg[v.index()] += 1;
        }
        assert!(deg.iter().all(|&d| d == 0 || d == 2));
    }

    #[test]
    fn find_short_cycle_respects_bound() {
        let g = cycle_graph(6);
        assert!(find_short_cycle(&g, 6).is_none());
        assert!(find_short_cycle(&g, 7).is_some());
    }

    #[test]
    fn break_short_cycles_raises_girth() {
        // Two triangles sharing a vertex plus a C7.
        let mut edges = vec![(0, 1), (1, 2), (2, 0), (0, 3), (3, 4), (4, 0)];
        edges.extend((5..12).map(|i| (i, if i == 11 { 5 } else { i + 1 })));
        let g = Graph::from_edges(12, edges).unwrap();
        let (h, removed) = break_short_cycles(&g, 6);
        assert_eq!(removed, 2);
        match girth(&h) {
            None => {}
            Some(girth) => assert!(girth >= 6, "girth {girth}"),
        }
    }

    #[test]
    fn break_short_cycles_noop_on_high_girth() {
        let g = cycle_graph(10);
        let (h, removed) = break_short_cycles(&g, 10);
        assert_eq!(removed, 0);
        assert_eq!(h.m(), 10);
        let (h2, removed2) = break_short_cycles(&g, 11);
        assert_eq!(removed2, 1);
        assert_eq!(h2.m(), 9);
    }
}
