//! Biconnected components (blocks) via Tarjan's lowpoint algorithm.
//!
//! The Demoucron planar-embedding algorithm in `planartest-embed` embeds
//! each block separately and stitches rotations at cut vertices.

use crate::{EdgeId, Graph, NodeId};

/// Partition of the edges of a graph into biconnected components (blocks).
#[derive(Debug, Clone)]
pub struct Blocks {
    /// `block_of_edge[e]` = dense block index of edge `e`.
    block_of_edge: Vec<u32>,
    /// Number of blocks.
    count: usize,
    /// Whether each node is a cut vertex.
    is_cut: Vec<bool>,
}

impl Blocks {
    /// Computes the block decomposition of `g` (iteratively, no recursion).
    pub fn build(g: &Graph) -> Self {
        let n = g.n();
        let mut block_of_edge = vec![u32::MAX; g.m()];
        let mut is_cut = vec![false; n];
        let mut count = 0usize;

        let mut disc = vec![u32::MAX; n]; // discovery times
        let mut low = vec![u32::MAX; n];
        let mut timer = 0u32;
        let mut edge_stack: Vec<EdgeId> = Vec::new();
        // DFS stack entries: (node, parent_edge, neighbour cursor, child count for roots).
        let mut stack: Vec<(NodeId, Option<EdgeId>, usize)> = Vec::new();

        for root in g.nodes() {
            if disc[root.index()] != u32::MAX {
                continue;
            }
            disc[root.index()] = timer;
            low[root.index()] = timer;
            timer += 1;
            let mut root_children = 0usize;
            stack.push((root, None, 0));
            while let Some(&mut (u, pe, ref mut i)) = stack.last_mut() {
                let nbrs = g.neighbors(u);
                if *i < nbrs.len() {
                    let (w, e) = nbrs[*i];
                    *i += 1;
                    if Some(e) == pe {
                        continue;
                    }
                    if disc[w.index()] == u32::MAX {
                        // Tree edge.
                        disc[w.index()] = timer;
                        low[w.index()] = timer;
                        timer += 1;
                        edge_stack.push(e);
                        if u == root {
                            root_children += 1;
                        }
                        stack.push((w, Some(e), 0));
                    } else if disc[w.index()] < disc[u.index()] {
                        // Back edge (to a proper ancestor or earlier node).
                        edge_stack.push(e);
                        low[u.index()] = low[u.index()].min(disc[w.index()]);
                    }
                } else {
                    stack.pop();
                    if let Some(&(p, _, _)) = stack.last() {
                        low[p.index()] = low[p.index()].min(low[u.index()]);
                        if low[u.index()] >= disc[p.index()] {
                            // p is a cut vertex (or the root): pop a block.
                            if p != root || root_children > 1 {
                                is_cut[p.index()] = true;
                            }
                            let tree_edge = pe.expect("non-root has a parent edge");
                            let b = count as u32;
                            count += 1;
                            while let Some(&top) = edge_stack.last() {
                                edge_stack.pop();
                                block_of_edge[top.index()] = b;
                                if top == tree_edge {
                                    break;
                                }
                            }
                        }
                    }
                }
            }
            // Correct root cut status (single child => not cut).
            if root_children <= 1 {
                is_cut[root.index()] = false;
            }
        }
        Blocks {
            block_of_edge,
            count,
            is_cut,
        }
    }

    /// Number of blocks.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Block index of edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if the edge was never assigned (cannot happen for edges of
    /// the graph the decomposition was built from).
    pub fn block_of_edge(&self, e: EdgeId) -> usize {
        let b = self.block_of_edge[e.index()];
        assert_ne!(b, u32::MAX, "edge {e:?} not assigned to a block");
        b as usize
    }

    /// Whether `v` is a cut vertex.
    pub fn is_cut_vertex(&self, v: NodeId) -> bool {
        self.is_cut[v.index()]
    }

    /// Groups edge ids by block: `result[b]` lists the edges of block `b`.
    pub fn edges_by_block(&self, g: &Graph) -> Vec<Vec<EdgeId>> {
        let mut out = vec![Vec::new(); self.count];
        for e in g.edge_ids() {
            out[self.block_of_edge(e)].push(e);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_block_cycle() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let b = Blocks::build(&g);
        assert_eq!(b.count(), 1);
        for v in g.nodes() {
            assert!(!b.is_cut_vertex(v));
        }
    }

    #[test]
    fn bridge_is_own_block() {
        // Two triangles joined by a bridge: 3 blocks, 2 cut vertices.
        let g =
            Graph::from_edges(6, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)]).unwrap();
        let b = Blocks::build(&g);
        assert_eq!(b.count(), 3);
        assert!(b.is_cut_vertex(NodeId::new(2)));
        assert!(b.is_cut_vertex(NodeId::new(3)));
        assert!(!b.is_cut_vertex(NodeId::new(0)));
        let bridge = g.edge_between(NodeId::new(2), NodeId::new(3)).unwrap();
        let groups = b.edges_by_block(&g);
        assert!(groups[b.block_of_edge(bridge)] == vec![bridge]);
    }

    #[test]
    fn two_triangles_sharing_vertex() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 0), (0, 3), (3, 4), (4, 0)]).unwrap();
        let b = Blocks::build(&g);
        assert_eq!(b.count(), 2);
        assert!(b.is_cut_vertex(NodeId::new(0)));
        assert_eq!(
            (1..5).filter(|&v| b.is_cut_vertex(NodeId::new(v))).count(),
            0
        );
    }

    #[test]
    fn path_every_edge_a_block() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let b = Blocks::build(&g);
        assert_eq!(b.count(), 3);
        assert!(b.is_cut_vertex(NodeId::new(1)));
        assert!(b.is_cut_vertex(NodeId::new(2)));
        assert!(!b.is_cut_vertex(NodeId::new(0)));
        assert!(!b.is_cut_vertex(NodeId::new(3)));
    }

    #[test]
    fn edges_partitioned() {
        let g = Graph::from_edges(
            7,
            [
                (0, 1),
                (1, 2),
                (2, 0),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 3),
                (5, 6),
            ],
        )
        .unwrap();
        let b = Blocks::build(&g);
        let groups = b.edges_by_block(&g);
        let total: usize = groups.iter().map(Vec::len).sum();
        assert_eq!(total, g.m());
        for e in g.edge_ids() {
            assert!(b.block_of_edge(e) < b.count());
        }
    }

    #[test]
    fn disconnected_graph() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (2, 0), (3, 4)]).unwrap();
        let b = Blocks::build(&g);
        assert_eq!(b.count(), 2);
    }
}
