//! Iterative depth-first search.

use crate::{EdgeId, Graph, NodeId};

/// Result of a DFS traversal from a single root.
#[derive(Debug, Clone)]
pub struct DfsTree {
    root: NodeId,
    parent: Vec<Option<NodeId>>,
    parent_edge: Vec<Option<EdgeId>>,
    /// Preorder discovery index, `None` if unreachable.
    pre: Vec<Option<u32>>,
    order: Vec<NodeId>,
}

impl DfsTree {
    /// Runs an iterative DFS from `root` over the root's component.
    pub fn build(g: &Graph, root: NodeId) -> Self {
        let n = g.n();
        let mut parent = vec![None; n];
        let mut parent_edge = vec![None; n];
        let mut pre = vec![None; n];
        let mut order = Vec::new();
        // Stack of (node, index into neighbour list).
        let mut stack: Vec<(NodeId, usize)> = Vec::new();
        pre[root.index()] = Some(0);
        order.push(root);
        stack.push((root, 0));
        while let Some(&mut (u, ref mut i)) = stack.last_mut() {
            let nbrs = g.neighbors(u);
            if *i >= nbrs.len() {
                stack.pop();
                continue;
            }
            let (w, e) = nbrs[*i];
            *i += 1;
            if pre[w.index()].is_none() {
                pre[w.index()] = Some(order.len() as u32);
                parent[w.index()] = Some(u);
                parent_edge[w.index()] = Some(e);
                order.push(w);
                stack.push((w, 0));
            }
        }
        DfsTree {
            root,
            parent,
            parent_edge,
            pre,
            order,
        }
    }

    /// The DFS root.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// DFS parent of `v` (`None` for root/unreachable).
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        self.parent[v.index()]
    }

    /// Edge to the DFS parent.
    pub fn parent_edge(&self, v: NodeId) -> Option<EdgeId> {
        self.parent_edge[v.index()]
    }

    /// Preorder (discovery) index of `v`.
    pub fn preorder(&self, v: NodeId) -> Option<u32> {
        self.pre[v.index()]
    }

    /// Whether `v` was reached.
    pub fn reached(&self, v: NodeId) -> bool {
        self.pre[v.index()].is_some()
    }

    /// Nodes in discovery order (root first).
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dfs_reaches_component() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (2, 0), (3, 4)]).unwrap();
        let t = DfsTree::build(&g, NodeId::new(0));
        assert!(t.reached(NodeId::new(2)));
        assert!(!t.reached(NodeId::new(3)));
        assert_eq!(t.order().len(), 3);
        assert_eq!(t.root(), NodeId::new(0));
    }

    #[test]
    fn dfs_parents_form_tree() {
        let g = Graph::from_edges(5, [(0, 1), (0, 2), (1, 3), (2, 4), (3, 4)]).unwrap();
        let t = DfsTree::build(&g, NodeId::new(0));
        let mut tree_edges = 0;
        for v in g.nodes() {
            if let Some(p) = t.parent(v) {
                tree_edges += 1;
                assert!(t.preorder(p).unwrap() < t.preorder(v).unwrap());
                let e = t.parent_edge(v).unwrap();
                let (a, b) = g.endpoints(e);
                assert!((a == p && b == v) || (a == v && b == p));
            }
        }
        assert_eq!(tree_edges, 4);
    }

    #[test]
    fn dfs_deep_path_no_overflow() {
        // Iterative DFS must handle long paths without stack overflow.
        let n = 100_000;
        let g = Graph::from_edges(n, (0..n - 1).map(|i| (i, i + 1))).unwrap();
        let t = DfsTree::build(&g, NodeId::new(0));
        assert_eq!(t.order().len(), n);
        assert_eq!(t.preorder(NodeId::new(n - 1)), Some((n - 1) as u32));
    }
}
