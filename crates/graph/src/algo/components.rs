//! Connected components.

use crate::algo::union_find::UnionFind;
use crate::{Graph, NodeId};

/// Connected-component labelling of a graph.
///
/// # Example
///
/// ```
/// use planartest_graph::Graph;
/// use planartest_graph::algo::components::Components;
///
/// let g = Graph::from_edges(5, [(0, 1), (2, 3)])?;
/// let cc = Components::build(&g);
/// assert_eq!(cc.count(), 3);
/// assert_eq!(cc.component_of(0.into()), cc.component_of(1.into()));
/// assert_ne!(cc.component_of(0.into()), cc.component_of(4.into()));
/// # Ok::<(), planartest_graph::GraphError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Components {
    label: Vec<u32>,
    count: usize,
    sizes: Vec<usize>,
}

impl Components {
    /// Labels every node with a dense component index in `0..count`.
    pub fn build(g: &Graph) -> Self {
        let mut uf = UnionFind::new(g.n());
        for (u, v) in g.edges() {
            uf.union(u.index(), v.index());
        }
        let mut label = vec![u32::MAX; g.n()];
        let mut sizes = Vec::new();
        for v in 0..g.n() {
            let r = uf.find(v);
            if label[r] == u32::MAX {
                label[r] = sizes.len() as u32;
                sizes.push(0);
            }
            label[v] = label[r];
            sizes[label[v] as usize] += 1;
        }
        let count = sizes.len();
        Components {
            label,
            count,
            sizes,
        }
    }

    /// Number of connected components.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Dense component index of `v`.
    pub fn component_of(&self, v: NodeId) -> usize {
        self.label[v.index()] as usize
    }

    /// Size of component `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= count()`.
    pub fn size(&self, c: usize) -> usize {
        self.sizes[c]
    }

    /// Size of the largest component (0 for an empty graph).
    pub fn largest(&self) -> usize {
        self.sizes.iter().copied().max().unwrap_or(0)
    }

    /// Whether the whole graph is one connected component.
    pub fn is_connected(&self) -> bool {
        self.count <= 1
    }
}

/// Convenience: whether `g` is connected (vacuously true for `n <= 1`).
pub fn is_connected(g: &Graph) -> bool {
    Components::build(g).is_connected()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_isolated() {
        let g = Graph::empty(4);
        let cc = Components::build(&g);
        assert_eq!(cc.count(), 4);
        assert_eq!(cc.largest(), 1);
        assert!(!cc.is_connected());
    }

    #[test]
    fn one_component() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        assert!(is_connected(&g));
        let cc = Components::build(&g);
        assert_eq!(cc.count(), 1);
        assert_eq!(cc.size(0), 4);
    }

    #[test]
    fn two_components_with_sizes() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (3, 4)]).unwrap();
        let cc = Components::build(&g);
        assert_eq!(cc.count(), 2);
        let a = cc.component_of(NodeId::new(0));
        let b = cc.component_of(NodeId::new(3));
        assert_ne!(a, b);
        assert_eq!(cc.size(a), 3);
        assert_eq!(cc.size(b), 2);
        assert_eq!(cc.largest(), 3);
    }

    #[test]
    fn empty_graph_connected() {
        let g = Graph::empty(0);
        assert!(is_connected(&g));
        let g1 = Graph::empty(1);
        assert!(is_connected(&g1));
    }
}
