//! Arboricity and degeneracy bounds.
//!
//! Planar graphs have arboricity at most 3 (the constant `α` in Stage I of
//! the tester). We provide the degeneracy ordering (core decomposition) —
//! which sandwiches arboricity as `⌈degeneracy/2⌉ ≤ arboricity ≤
//! degeneracy` — plus the Nash–Williams density lower bound, and the
//! Barenboim–Elkin style peeling certificate used by the distributed
//! algorithm.

use crate::{Graph, NodeId};

/// The degeneracy of `g`: the maximum over subgraphs of the minimum degree,
/// computed with the classic bucket peeling in `O(n + m)`.
///
/// Also returns a peeling order witnessing it (each node has at most
/// `degeneracy` neighbours later in the order).
pub fn degeneracy(g: &Graph) -> (usize, Vec<NodeId>) {
    let n = g.n();
    if n == 0 {
        return (0, Vec::new());
    }
    let mut deg: Vec<usize> = (0..n).map(|v| g.degree(NodeId::new(v))).collect();
    let maxd = deg.iter().copied().max().unwrap_or(0);
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); maxd + 1];
    for (v, &d) in deg.iter().enumerate() {
        buckets[d].push(v);
    }
    let mut removed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut degen = 0usize;
    let mut cur = 0usize;
    for _ in 0..n {
        // Pop the next live entry from the lowest non-empty bucket. Stale
        // entries (degree changed or node already removed) are skipped;
        // `cur` only moves down when a neighbour's degree drops below it.
        let v = loop {
            if cur > maxd {
                unreachable!("n nodes must be peelable");
            }
            match buckets[cur].pop() {
                Some(v) if !removed[v] && deg[v] == cur => break v,
                Some(_) => continue,
                None => cur += 1,
            }
        };
        removed[v] = true;
        degen = degen.max(deg[v]);
        order.push(NodeId::new(v));
        for &(w, _) in g.neighbors(NodeId::new(v)) {
            let wi = w.index();
            if !removed[wi] {
                deg[wi] -= 1;
                buckets[deg[wi]].push(wi);
                if deg[wi] < cur {
                    cur = deg[wi];
                }
            }
        }
    }
    (degen, order)
}

/// Nash–Williams lower bound on arboricity from the global density:
/// `⌈m / (n − 1)⌉` for `n ≥ 2` (any subgraph would only increase it).
pub fn density_lower_bound(g: &Graph) -> usize {
    if g.n() < 2 {
        0
    } else {
        g.m().div_ceil(g.n() - 1)
    }
}

/// Outcome of the Barenboim–Elkin peeling process with threshold `3α`:
/// repeatedly deactivate nodes with at most `3α` active neighbours, for at
/// most `rounds` rounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeelingOutcome {
    /// Round in which each node became inactive (`None` = still active).
    pub inactive_round: Vec<Option<u32>>,
    /// Number of nodes still active after the allotted rounds.
    pub survivors: usize,
}

/// Centralized reference implementation of the \[2\]-style peeling used by
/// the distributed forest-decomposition step (a test oracle for it).
///
/// If `g` has arboricity ≤ `alpha`, every node becomes inactive within
/// `O(log n)` rounds; a survivor certifies arboricity > `alpha`.
pub fn peel(g: &Graph, alpha: usize, rounds: u32) -> PeelingOutcome {
    let n = g.n();
    let mut inactive_round = vec![None; n];
    let mut active_deg: Vec<usize> = (0..n).map(|v| g.degree(NodeId::new(v))).collect();
    let mut active: Vec<bool> = vec![true; n];
    let mut survivors = n;
    for r in 0..rounds {
        let peeled: Vec<usize> = (0..n)
            .filter(|&v| active[v] && active_deg[v] <= 3 * alpha)
            .collect();
        if peeled.is_empty() {
            break;
        }
        for &v in &peeled {
            active[v] = false;
            inactive_round[v] = Some(r);
            survivors -= 1;
        }
        for &v in &peeled {
            for &(w, _) in g.neighbors(NodeId::new(v)) {
                if active[w.index()] {
                    active_deg[w.index()] -= 1;
                }
            }
        }
        if survivors == 0 {
            break;
        }
    }
    PeelingOutcome {
        inactive_round,
        survivors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degeneracy_of_tree_is_one() {
        let g = Graph::from_edges(6, [(0, 1), (0, 2), (1, 3), (1, 4), (2, 5)]).unwrap();
        let (d, order) = degeneracy(&g);
        assert_eq!(d, 1);
        assert_eq!(order.len(), 6);
    }

    #[test]
    fn degeneracy_of_complete_graph() {
        let n = 6;
        let g = Graph::from_edges(n, (0..n).flat_map(|i| (i + 1..n).map(move |j| (i, j)))).unwrap();
        let (d, _) = degeneracy(&g);
        assert_eq!(d, n - 1);
    }

    #[test]
    fn degeneracy_order_witnesses() {
        let g = Graph::from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4), (1, 2), (3, 4)]).unwrap();
        let (d, order) = degeneracy(&g);
        let mut pos = vec![0usize; g.n()];
        for (i, &v) in order.iter().enumerate() {
            pos[v.index()] = i;
        }
        for v in g.nodes() {
            let later = g
                .neighbors(v)
                .iter()
                .filter(|&&(w, _)| pos[w.index()] > pos[v.index()])
                .count();
            assert!(
                later <= d,
                "node {v:?} has {later} later neighbours, degeneracy {d}"
            );
        }
    }

    #[test]
    fn density_bounds() {
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]).unwrap();
        assert_eq!(density_lower_bound(&g), 2); // K4: 6 / 3
        assert_eq!(density_lower_bound(&Graph::empty(1)), 0);
        assert_eq!(density_lower_bound(&Graph::empty(0)), 0);
    }

    #[test]
    fn peel_planar_terminates() {
        // A 10x10 grid (planar, arboricity <= 3) peels out completely.
        let mut edges = Vec::new();
        let idx = |r: usize, c: usize| r * 10 + c;
        for r in 0..10 {
            for c in 0..10 {
                if c + 1 < 10 {
                    edges.push((idx(r, c), idx(r, c + 1)));
                }
                if r + 1 < 10 {
                    edges.push((idx(r, c), idx(r + 1, c)));
                }
            }
        }
        let g = Graph::from_edges(100, edges).unwrap();
        let out = peel(&g, 3, 30);
        assert_eq!(out.survivors, 0);
        assert!(out.inactive_round.iter().all(Option::is_some));
    }

    #[test]
    fn peel_dense_graph_survives() {
        // K12 has min degree 11 > 9 = 3*3: nobody ever peels.
        let n = 12;
        let g = Graph::from_edges(n, (0..n).flat_map(|i| (i + 1..n).map(move |j| (i, j)))).unwrap();
        let out = peel(&g, 3, 50);
        assert_eq!(out.survivors, n);
    }

    #[test]
    fn peel_constant_fraction_per_round() {
        // On a planar graph, each round must peel >= a constant fraction
        // (here we just check it finishes within c*log n rounds).
        let mut edges = Vec::new();
        let k = 40usize;
        let idx = |r: usize, c: usize| r * k + c;
        for r in 0..k {
            for c in 0..k {
                if c + 1 < k {
                    edges.push((idx(r, c), idx(r, c + 1)));
                }
                if r + 1 < k {
                    edges.push((idx(r, c), idx(r + 1, c)));
                }
                if c + 1 < k && r + 1 < k {
                    edges.push((idx(r, c), idx(r + 1, c + 1)));
                }
            }
        }
        let g = Graph::from_edges(k * k, edges).unwrap();
        let rounds = 4 * (k * k).ilog2();
        let out = peel(&g, 3, rounds);
        assert_eq!(out.survivors, 0);
    }
}
