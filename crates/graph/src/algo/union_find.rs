//! Disjoint-set union (union-find) with path compression and union by rank.

/// Disjoint-set forest over `0..n`.
///
/// # Example
///
/// ```
/// use planartest_graph::algo::union_find::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// assert!(uf.union(0, 1));
/// assert!(!uf.union(1, 0)); // already joined
/// assert!(uf.same(0, 1));
/// assert!(!uf.same(0, 2));
/// assert_eq!(uf.set_count(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    sets: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            sets: n,
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, x: usize) -> usize {
        let mut r = x;
        while self.parent[r] as usize != r {
            r = self.parent[r] as usize;
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] as usize != cur {
            let next = self.parent[cur] as usize;
            self.parent[cur] = r as u32;
            cur = next;
        }
        r
    }

    /// Merges the sets of `x` and `y`; returns `true` if they were distinct.
    pub fn union(&mut self, x: usize, y: usize) -> bool {
        let (rx, ry) = (self.find(x), self.find(y));
        if rx == ry {
            return false;
        }
        let (hi, lo) = if self.rank[rx] >= self.rank[ry] {
            (rx, ry)
        } else {
            (ry, rx)
        };
        self.parent[lo] = hi as u32;
        if self.rank[hi] == self.rank[lo] {
            self.rank[hi] += 1;
        }
        self.sets -= 1;
        true
    }

    /// Whether `x` and `y` are in the same set.
    pub fn same(&mut self, x: usize, y: usize) -> bool {
        self.find(x) == self.find(y)
    }

    /// Number of disjoint sets.
    pub fn set_count(&self) -> usize {
        self.sets
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons() {
        let mut uf = UnionFind::new(3);
        assert_eq!(uf.set_count(), 3);
        for i in 0..3 {
            assert_eq!(uf.find(i), i);
        }
        assert_eq!(uf.len(), 3);
        assert!(!uf.is_empty());
    }

    #[test]
    fn chain_unions() {
        let mut uf = UnionFind::new(10);
        for i in 0..9 {
            assert!(uf.union(i, i + 1));
        }
        assert_eq!(uf.set_count(), 1);
        assert!(uf.same(0, 9));
    }

    #[test]
    fn union_idempotent() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(1, 2));
        assert!(!uf.union(2, 1));
        assert_eq!(uf.set_count(), 3);
    }

    #[test]
    fn empty() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.set_count(), 0);
    }
}
