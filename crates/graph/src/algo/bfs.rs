//! Breadth-first search trees and distance computations.

use std::collections::VecDeque;

use crate::{EdgeId, Graph, NodeId};

/// A BFS tree rooted at a node, restricted to the root's connected
/// component.
///
/// # Example
///
/// ```
/// use planartest_graph::{Graph, NodeId};
/// use planartest_graph::algo::bfs::BfsTree;
///
/// let g = Graph::from_edges(4, [(0, 1), (1, 2), (0, 3)])?;
/// let t = BfsTree::build(&g, NodeId::new(0));
/// assert_eq!(t.level(NodeId::new(2)), Some(2));
/// assert_eq!(t.parent(NodeId::new(2)), Some(NodeId::new(1)));
/// assert_eq!(t.parent(NodeId::new(0)), None);
/// # Ok::<(), planartest_graph::GraphError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BfsTree {
    root: NodeId,
    parent: Vec<Option<NodeId>>,
    parent_edge: Vec<Option<EdgeId>>,
    level: Vec<Option<u32>>,
    /// Nodes of the component in BFS visit order (root first).
    order: Vec<NodeId>,
}

impl BfsTree {
    /// Runs BFS over the whole graph from `root`.
    pub fn build(g: &Graph, root: NodeId) -> Self {
        Self::build_filtered(g, root, |_| true)
    }

    /// Runs BFS from `root`, traversing only nodes for which
    /// `allow(node)` is true. The root is always allowed.
    pub fn build_filtered<F>(g: &Graph, root: NodeId, mut allow: F) -> Self
    where
        F: FnMut(NodeId) -> bool,
    {
        let n = g.n();
        let mut parent = vec![None; n];
        let mut parent_edge = vec![None; n];
        let mut level = vec![None; n];
        let mut order = Vec::new();
        let mut q = VecDeque::new();
        level[root.index()] = Some(0);
        order.push(root);
        q.push_back(root);
        while let Some(u) = q.pop_front() {
            let lu = level[u.index()].expect("queued nodes have levels");
            for &(w, e) in g.neighbors(u) {
                if level[w.index()].is_none() && allow(w) {
                    level[w.index()] = Some(lu + 1);
                    parent[w.index()] = Some(u);
                    parent_edge[w.index()] = Some(e);
                    order.push(w);
                    q.push_back(w);
                }
            }
        }
        BfsTree {
            root,
            parent,
            parent_edge,
            level,
            order,
        }
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// BFS level (distance from root), or `None` if unreachable.
    pub fn level(&self, v: NodeId) -> Option<u32> {
        self.level[v.index()]
    }

    /// BFS parent, or `None` for the root and unreachable nodes.
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        self.parent[v.index()]
    }

    /// The edge to the BFS parent, or `None` for root/unreachable nodes.
    pub fn parent_edge(&self, v: NodeId) -> Option<EdgeId> {
        self.parent_edge[v.index()]
    }

    /// Whether `v` was reached from the root.
    pub fn reached(&self, v: NodeId) -> bool {
        self.level[v.index()].is_some()
    }

    /// Nodes of the root's component in BFS order (root first).
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }

    /// Number of reached nodes (including the root).
    pub fn component_size(&self) -> usize {
        self.order.len()
    }

    /// Maximum level over reached nodes (the *eccentricity* of the root
    /// within its component).
    pub fn height(&self) -> u32 {
        self.order
            .iter()
            .map(|&v| self.level[v.index()].expect("ordered nodes have levels"))
            .max()
            .unwrap_or(0)
    }

    /// Whether edge `e = (u, v)` is a tree edge of this BFS tree.
    pub fn is_tree_edge(&self, g: &Graph, e: EdgeId) -> bool {
        let (u, v) = g.endpoints(e);
        self.parent_edge(u) == Some(e) || self.parent_edge(v) == Some(e)
    }

    /// The path from `v` up to the root (inclusive), or `None` if `v` is
    /// unreachable.
    pub fn path_to_root(&self, v: NodeId) -> Option<Vec<NodeId>> {
        if !self.reached(v) {
            return None;
        }
        let mut path = vec![v];
        let mut cur = v;
        while let Some(p) = self.parent(cur) {
            path.push(p);
            cur = p;
        }
        Some(path)
    }
}

/// Single-source distances via BFS; `None` for unreachable nodes.
pub fn distances(g: &Graph, src: NodeId) -> Vec<Option<u32>> {
    let t = BfsTree::build(g, src);
    g.nodes().map(|v| t.level(v)).collect()
}

/// Exact diameter of the component containing `src` (two-phase BFS gives a
/// lower bound; this does all-pairs from every node of the component, so it
/// is exact but `O(n·m)` — intended for oracles and tests).
pub fn component_diameter(g: &Graph, src: NodeId) -> u32 {
    let t = BfsTree::build(g, src);
    let mut diam = 0;
    for &v in t.order() {
        diam = diam.max(BfsTree::build_filtered(g, v, |w| t.reached(w)).height());
    }
    diam
}

/// Fast 2-approximation of the diameter of `src`'s component: the height of
/// a BFS tree from the farthest node found by a first BFS.
pub fn approx_diameter(g: &Graph, src: NodeId) -> u32 {
    let t = BfsTree::build(g, src);
    let far = t
        .order()
        .iter()
        .copied()
        .max_by_key(|&v| t.level(v).unwrap_or(0))
        .unwrap_or(src);
    BfsTree::build_filtered(g, far, |w| t.reached(w)).height()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> Graph {
        Graph::from_edges(n, (0..n - 1).map(|i| (i, i + 1))).unwrap()
    }

    #[test]
    fn bfs_levels_on_path() {
        let g = path_graph(5);
        let t = BfsTree::build(&g, NodeId::new(0));
        for v in 0..5 {
            assert_eq!(t.level(NodeId::new(v)), Some(v as u32));
        }
        assert_eq!(t.height(), 4);
        assert_eq!(t.component_size(), 5);
    }

    #[test]
    fn bfs_parent_edges_consistent() {
        let g = Graph::from_edges(5, [(0, 1), (0, 2), (1, 3), (2, 4), (3, 4)]).unwrap();
        let t = BfsTree::build(&g, NodeId::new(0));
        for v in g.nodes() {
            if let Some(p) = t.parent(v) {
                let e = t.parent_edge(v).unwrap();
                let (a, b) = g.endpoints(e);
                assert!((a, b) == (p.min(v), p.max(v)));
                assert_eq!(t.level(v).unwrap(), t.level(p).unwrap() + 1);
                assert!(t.is_tree_edge(&g, e));
            }
        }
    }

    #[test]
    fn bfs_disconnected() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let t = BfsTree::build(&g, NodeId::new(0));
        assert!(t.reached(NodeId::new(1)));
        assert!(!t.reached(NodeId::new(2)));
        assert_eq!(t.level(NodeId::new(3)), None);
        assert_eq!(t.component_size(), 2);
        assert_eq!(t.path_to_root(NodeId::new(3)), None);
    }

    #[test]
    fn bfs_filtered_respects_mask() {
        let g = path_graph(5);
        let t = BfsTree::build_filtered(&g, NodeId::new(0), |v| v.index() != 2);
        assert!(t.reached(NodeId::new(1)));
        assert!(!t.reached(NodeId::new(2)));
        assert!(!t.reached(NodeId::new(3)));
    }

    #[test]
    fn path_to_root_is_descending() {
        let g = path_graph(4);
        let t = BfsTree::build(&g, NodeId::new(0));
        let p = t.path_to_root(NodeId::new(3)).unwrap();
        assert_eq!(
            p.iter().map(|v| v.index()).collect::<Vec<_>>(),
            vec![3, 2, 1, 0]
        );
    }

    #[test]
    fn diameters() {
        let g = path_graph(6);
        assert_eq!(component_diameter(&g, NodeId::new(2)), 5);
        assert_eq!(approx_diameter(&g, NodeId::new(2)), 5);
        let c = Graph::from_edges(6, (0..6).map(|i| (i, (i + 1) % 6))).unwrap();
        assert_eq!(component_diameter(&c, NodeId::new(0)), 3);
    }

    #[test]
    fn distances_match_levels() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let d = distances(&g, NodeId::new(0));
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(1)]);
    }

    #[test]
    fn single_node() {
        let g = Graph::empty(1);
        let t = BfsTree::build(&g, NodeId::new(0));
        assert_eq!(t.height(), 0);
        assert_eq!(t.component_size(), 1);
        assert_eq!(t.root(), NodeId::new(0));
    }
}
