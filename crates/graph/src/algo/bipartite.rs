//! Bipartiteness testing and odd-cycle certificates.

use std::collections::VecDeque;

use crate::{Graph, NodeId};

/// Outcome of a bipartiteness check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Bipartiteness {
    /// The graph is bipartite; `side[v]` gives a valid 2-colouring.
    Bipartite {
        /// `side[v] ∈ {0, 1}` for every node.
        side: Vec<u8>,
    },
    /// The graph contains an odd cycle; the returned edge closes one
    /// (both endpoints have the same BFS-level parity).
    OddCycle {
        /// An edge `(u, v)` whose endpoints have equal colour in the
        /// attempted 2-colouring.
        witness: (NodeId, NodeId),
    },
}

impl Bipartiteness {
    /// Whether the graph was found bipartite.
    pub fn is_bipartite(&self) -> bool {
        matches!(self, Bipartiteness::Bipartite { .. })
    }
}

/// Checks bipartiteness by BFS 2-colouring every component.
pub fn check_bipartite(g: &Graph) -> Bipartiteness {
    let mut side = vec![u8::MAX; g.n()];
    let mut q = VecDeque::new();
    for s in g.nodes() {
        if side[s.index()] != u8::MAX {
            continue;
        }
        side[s.index()] = 0;
        q.push_back(s);
        while let Some(u) = q.pop_front() {
            for &(w, _) in g.neighbors(u) {
                if side[w.index()] == u8::MAX {
                    side[w.index()] = 1 - side[u.index()];
                    q.push_back(w);
                } else if side[w.index()] == side[u.index()] {
                    return Bipartiteness::OddCycle { witness: (u, w) };
                }
            }
        }
    }
    Bipartiteness::Bipartite { side }
}

/// Minimum number of edges whose removal makes `g` bipartite is at least
/// this value (computed per component as `m_c − (n_c − 1)` only when the
/// component has no even... — conservative certificate used by tests: the
/// count of same-side edges under the best of a few random colourings is an
/// *upper* bound, so instead we return the trivially sound lower bound of 1
/// when an odd cycle exists, else 0).
pub fn odd_cycle_lower_bound(g: &Graph) -> usize {
    match check_bipartite(g) {
        Bipartiteness::Bipartite { .. } => 0,
        Bipartiteness::OddCycle { .. } => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_cycle_bipartite() {
        let g = Graph::from_edges(6, (0..6).map(|i| (i, (i + 1) % 6))).unwrap();
        let r = check_bipartite(&g);
        assert!(r.is_bipartite());
        if let Bipartiteness::Bipartite { side } = r {
            for (u, v) in g.edges() {
                assert_ne!(side[u.index()], side[v.index()]);
            }
        }
    }

    #[test]
    fn odd_cycle_detected() {
        let g = Graph::from_edges(5, (0..5).map(|i| (i, (i + 1) % 5))).unwrap();
        let r = check_bipartite(&g);
        assert!(!r.is_bipartite());
        if let Bipartiteness::OddCycle { witness: (u, v) } = r {
            assert!(g.has_edge(u, v));
        }
        assert_eq!(odd_cycle_lower_bound(&g), 1);
    }

    #[test]
    fn disconnected_mixed() {
        // Component 1: bipartite path; component 2: triangle.
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (3, 4), (4, 5), (5, 3)]).unwrap();
        assert!(!check_bipartite(&g).is_bipartite());
    }

    #[test]
    fn empty_and_trivial() {
        assert!(check_bipartite(&Graph::empty(0)).is_bipartite());
        assert!(check_bipartite(&Graph::empty(3)).is_bipartite());
        assert_eq!(odd_cycle_lower_bound(&Graph::empty(3)), 0);
    }
}
