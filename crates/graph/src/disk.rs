//! Relocatable on-disk CSR format: zero-copy mmap loading and a
//! streaming two-pass counting-sort builder.
//!
//! The file carries the same three flat arrays as the resident
//! [`Graph`] — `offsets`, canonical `edges`, and the `csr` adjacency —
//! behind a versioned, fingerprint-stamped header. Everything is
//! little-endian and 8-byte aligned, so on little-endian hosts the
//! loader maps the file (`mmap` on unix, a buffered read elsewhere) and
//! hands the engine slices *into the mapping*: a graph with `n ≫ 10^6`
//! becomes queryable without ever owning its arrays in RAM.
//!
//! ```text
//! byte 0   magic "PTCSRv1\n"
//!      8   endian tag 0x1A2B3C4D (LE; byte-swapped ⇒ WrongEndian)
//!     12   format version (u32)
//!     16   n (u64)              24  m (u64)
//!     32   content fingerprint (u128)
//!     48   file length (u64)    56  reserved
//!     64   offsets  — (n+1) × u32, padded to 8
//!      .   edges    — m × (u32 u, u32 v), canonical u < v, sorted
//!      .   csr      — 2m × (u32 neighbour, u32 edge id), rows sorted
//! ```
//!
//! The loader validates the header, the section geometry against the
//! file length, every CSR invariant (offsets monotone, ids in range,
//! rows sorted, adjacency consistent with the edge list) and recomputes
//! the fingerprint against the stamp — corrupted or truncated files
//! surface as typed [`DiskError`]s, never panics or UB.
//!
//! [`stream_to_disk`] builds such a file from an [`EdgeSource`] in two
//! passes (count, then place) using O(n + max bucket) memory: the full
//! edge vector never exists in RAM, which is what makes out-of-core
//! ingest of `n ≫ 10^6` generator graphs possible.

use std::fmt;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::fingerprint::{Digest, Fingerprint};
use crate::io::ParseGraphError;
use crate::{EdgeId, Graph, NodeId};

const MAGIC: [u8; 8] = *b"PTCSRv1\n";
const ENDIAN_TAG: u32 = 0x1A2B_3C4D;
const VERSION: u32 = 1;
const HEADER_LEN: usize = 64;

/// Error reading, writing or streaming an on-disk CSR file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiskError {
    /// An underlying I/O operation failed (message form keeps the error
    /// `Clone`/`PartialEq` for the service layer).
    Io(String),
    /// The file does not start with the CSR magic.
    BadMagic,
    /// The magic matched but the endianness tag is byte-swapped: the
    /// file was written on an opposite-endian host.
    WrongEndian,
    /// Unknown format version.
    BadVersion {
        /// The version found in the header.
        found: u32,
    },
    /// The file is shorter than its header-declared geometry.
    Truncated {
        /// Bytes the header geometry requires.
        expected: u64,
        /// Bytes actually present.
        found: u64,
    },
    /// A structural invariant of the CSR content is violated.
    Corrupt {
        /// Which invariant failed.
        what: &'static str,
    },
    /// The recomputed content fingerprint disagrees with the stamp.
    FingerprintMismatch {
        /// Fingerprint stamped in the header.
        stamped: Fingerprint,
        /// Fingerprint recomputed from the mapped content.
        computed: Fingerprint,
    },
    /// The graph exceeds a format limit (ids and adjacency offsets must
    /// fit `u32`, sections must fit the address space).
    TooLarge {
        /// Which quantity overflowed.
        what: &'static str,
    },
    /// An edge-list text source failed to parse.
    Parse(ParseGraphError),
    /// An edge source produced an invalid edge.
    Graph(crate::GraphError),
}

impl fmt::Display for DiskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiskError::Io(msg) => write!(f, "i/o error: {msg}"),
            DiskError::BadMagic => f.write_str("not an on-disk CSR file (bad magic)"),
            DiskError::WrongEndian => f.write_str("on-disk CSR written with opposite endianness"),
            DiskError::BadVersion { found } => {
                write!(f, "unsupported on-disk CSR version {found}")
            }
            DiskError::Truncated { expected, found } => {
                write!(f, "truncated CSR file: need {expected} bytes, have {found}")
            }
            DiskError::Corrupt { what } => write!(f, "corrupt CSR file: {what}"),
            DiskError::FingerprintMismatch { stamped, computed } => write!(
                f,
                "CSR fingerprint mismatch: header says {stamped}, content is {computed}"
            ),
            DiskError::TooLarge { what } => write!(f, "graph too large for CSR format: {what}"),
            DiskError::Parse(e) => write!(f, "edge-list source: {e}"),
            DiskError::Graph(e) => write!(f, "invalid edge from source: {e}"),
        }
    }
}

impl std::error::Error for DiskError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DiskError::Parse(e) => Some(e),
            DiskError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for DiskError {
    fn from(e: io::Error) -> Self {
        DiskError::Io(e.to_string())
    }
}

impl From<ParseGraphError> for DiskError {
    fn from(e: ParseGraphError) -> Self {
        DiskError::Parse(e)
    }
}

impl From<crate::GraphError> for DiskError {
    fn from(e: crate::GraphError) -> Self {
        DiskError::Graph(e)
    }
}

/// Byte layout of one file, derived from `(n, m)`.
struct Layout {
    offsets_at: usize,
    edges_at: usize,
    csr_at: usize,
    file_len: u64,
}

fn align8(x: u64) -> u64 {
    (x + 7) & !7
}

fn layout(n: u64, m: u64) -> Result<Layout, DiskError> {
    if m.checked_mul(2).is_none() || 2 * m > u64::from(u32::MAX) {
        return Err(DiskError::TooLarge {
            what: "2m adjacency entries exceed u32 offsets",
        });
    }
    if n >= u64::from(u32::MAX) {
        return Err(DiskError::TooLarge {
            what: "node count exceeds u32 ids",
        });
    }
    let offsets_at = HEADER_LEN as u64;
    let edges_at = align8(offsets_at + (n + 1) * 4);
    let csr_at = edges_at + m * 8;
    let file_len = csr_at + 2 * m * 8;
    if usize::try_from(file_len).is_err() {
        return Err(DiskError::TooLarge {
            what: "file exceeds the address space",
        });
    }
    Ok(Layout {
        offsets_at: offsets_at as usize,
        edges_at: edges_at as usize,
        csr_at: csr_at as usize,
        file_len,
    })
}

fn encode_header(n: u64, m: u64, fingerprint: Fingerprint, file_len: u64) -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[0..8].copy_from_slice(&MAGIC);
    h[8..12].copy_from_slice(&ENDIAN_TAG.to_le_bytes());
    h[12..16].copy_from_slice(&VERSION.to_le_bytes());
    h[16..24].copy_from_slice(&n.to_le_bytes());
    h[24..32].copy_from_slice(&m.to_le_bytes());
    h[32..48].copy_from_slice(&fingerprint.0.to_le_bytes());
    h[48..56].copy_from_slice(&file_len.to_le_bytes());
    h
}

/// Decoded header fields (validated magic / endianness / version).
struct Header {
    n: u64,
    m: u64,
    fingerprint: Fingerprint,
    file_len: u64,
}

fn decode_header(bytes: &[u8]) -> Result<Header, DiskError> {
    if bytes.len() < HEADER_LEN {
        return Err(DiskError::Truncated {
            expected: HEADER_LEN as u64,
            found: bytes.len() as u64,
        });
    }
    if bytes[0..8] != MAGIC {
        return Err(DiskError::BadMagic);
    }
    let le = |r: std::ops::Range<usize>| -> u64 {
        let mut b = [0u8; 8];
        b[..r.len()].copy_from_slice(&bytes[r]);
        u64::from_le_bytes(b)
    };
    let tag = le(8..12) as u32;
    if tag == ENDIAN_TAG.swap_bytes() {
        return Err(DiskError::WrongEndian);
    }
    if tag != ENDIAN_TAG {
        return Err(DiskError::BadMagic);
    }
    let version = le(12..16) as u32;
    if version != VERSION {
        return Err(DiskError::BadVersion { found: version });
    }
    let mut fp = [0u8; 16];
    fp.copy_from_slice(&bytes[32..48]);
    Ok(Header {
        n: le(16..24),
        m: le(24..32),
        fingerprint: Fingerprint(u128::from_le_bytes(fp)),
        file_len: le(48..56),
    })
}

/// Memory mapping behind a safe RAII wrapper (unix only; everyone else
/// takes the buffered path). The workspace is offline, so the `mmap` /
/// `munmap` prototypes are declared directly — every unix target links
/// them through libc already, the same precedent as the CLI's `signal`
/// handler.
#[cfg(all(unix, target_pointer_width = "64"))]
mod mm {
    use std::fs::File;
    use std::io;
    use std::os::unix::io::AsRawFd;

    extern "C" {
        fn mmap(addr: *mut u8, len: usize, prot: i32, flags: i32, fd: i32, offset: i64) -> *mut u8;
        fn munmap(addr: *mut u8, len: usize) -> i32;
    }

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    /// A read-only private mapping of a whole file.
    pub struct Map {
        ptr: *mut u8,
        len: usize,
    }

    // SAFETY: the mapping is PROT_READ-only over an immutable spill
    // file; no interior mutability, so shared references are fine
    // across threads.
    unsafe impl Send for Map {}
    unsafe impl Sync for Map {}

    impl Map {
        pub fn new(file: &File, len: usize) -> io::Result<Map> {
            assert!(len > 0, "cannot map an empty file");
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err(io::Error::last_os_error());
            }
            Ok(Map { ptr, len })
        }

        pub fn bytes(&self) -> &[u8] {
            // SAFETY: ptr/len come from a successful mmap; the mapping
            // lives until Drop.
            unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
        }
    }

    impl Drop for Map {
        fn drop(&mut self) {
            // SAFETY: exactly the region returned by mmap.
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }
}

/// The bytes behind a loaded file: an OS mapping where available, an
/// 8-byte-aligned in-RAM copy otherwise.
enum Backing {
    #[cfg(all(unix, target_pointer_width = "64"))]
    Mapped(mm::Map),
    /// `Vec<u64>` (not `Vec<u8>`) so the buffer is 8-byte aligned like
    /// a page-aligned mapping; the second field is the real byte length.
    Buffered(Vec<u64>, usize),
}

impl Backing {
    fn bytes(&self) -> &[u8] {
        match self {
            #[cfg(all(unix, target_pointer_width = "64"))]
            Backing::Mapped(m) => m.bytes(),
            Backing::Buffered(words, len) => {
                // SAFETY: the Vec owns at least `len` initialized bytes.
                unsafe { std::slice::from_raw_parts(words.as_ptr().cast::<u8>(), *len) }
            }
        }
    }
}

/// A validated on-disk CSR held open behind a [`Graph`]'s mapped tier.
///
/// Accessors reinterpret the mapped bytes as the typed CSR slices; the
/// loader has already verified layout compatibility, alignment, section
/// bounds, every structural invariant and the fingerprint stamp.
pub struct MappedCsr {
    backing: Backing,
    n: usize,
    m: usize,
    fingerprint: Fingerprint,
    layout: Layout,
}

impl MappedCsr {
    pub(crate) fn n(&self) -> usize {
        self.n
    }

    pub(crate) fn fingerprint(&self) -> Fingerprint {
        self.fingerprint
    }

    pub(crate) fn offsets(&self) -> &[u32] {
        // SAFETY: bounds and 4-byte alignment validated at load.
        unsafe { self.section(self.layout.offsets_at, self.n + 1) }
    }

    pub(crate) fn edges(&self) -> &[(NodeId, NodeId)] {
        // SAFETY: bounds/alignment validated; NodeId is
        // repr(transparent) over u32 and the pair layout was self-checked.
        unsafe { self.section(self.layout.edges_at, self.m) }
    }

    pub(crate) fn csr(&self) -> &[(NodeId, EdgeId)] {
        // SAFETY: as for `edges`.
        unsafe { self.section(self.layout.csr_at, 2 * self.m) }
    }

    /// # Safety
    ///
    /// `at..at + count * size_of::<T>()` must lie inside the backing
    /// bytes, aligned for `T`, and `T` must be valid for any bit
    /// pattern found there — all established by `load` validation.
    unsafe fn section<T>(&self, at: usize, count: usize) -> &[T] {
        let bytes = self.backing.bytes();
        debug_assert!(at + count * std::mem::size_of::<T>() <= bytes.len());
        debug_assert_eq!(at % std::mem::align_of::<T>(), 0);
        debug_assert_eq!(bytes.as_ptr() as usize % std::mem::align_of::<T>(), 0);
        std::slice::from_raw_parts(bytes.as_ptr().add(at).cast::<T>(), count)
    }
}

/// Runtime proof that `(NodeId, NodeId)` / `(NodeId, EdgeId)` pairs are
/// layout-identical to `(u32, u32)` little-endian words on this target,
/// which the zero-copy casts rely on. The ids are `repr(transparent)`,
/// but tuple layout is formally unspecified, so the loader checks once
/// per call instead of assuming.
fn id_layout_is_transparent() -> bool {
    use std::mem::{align_of, size_of};
    if size_of::<(NodeId, NodeId)>() != 8
        || align_of::<(NodeId, NodeId)>() != 4
        || size_of::<(NodeId, EdgeId)>() != 8
        || align_of::<(NodeId, EdgeId)>() != 4
    {
        return false;
    }
    let nn: [u32; 2] = unsafe { std::mem::transmute((NodeId::new(1), NodeId::new(2))) };
    let ne: [u32; 2] = unsafe { std::mem::transmute((NodeId::new(3), EdgeId::new(4))) };
    nn == [1, 2] && ne == [3, 4]
}

/// Validates header geometry plus every CSR structural invariant and
/// the fingerprint stamp over an already-loaded byte image.
fn validate(bytes: &[u8]) -> Result<(Header, Layout), DiskError> {
    let header = decode_header(bytes)?;
    let lay = layout(header.n, header.m)?;
    if header.file_len != lay.file_len {
        return Err(DiskError::Corrupt {
            what: "header length field disagrees with geometry",
        });
    }
    if (bytes.len() as u64) < lay.file_len {
        return Err(DiskError::Truncated {
            expected: lay.file_len,
            found: bytes.len() as u64,
        });
    }
    let n = header.n as usize;
    let m = header.m as usize;
    let u32_at = |at: usize, i: usize| -> u32 {
        let b = &bytes[at + 4 * i..at + 4 * i + 4];
        u32::from_le_bytes([b[0], b[1], b[2], b[3]])
    };
    // Offsets: starts at 0, monotone, ends at 2m.
    if u32_at(lay.offsets_at, 0) != 0 || u32_at(lay.offsets_at, n) as usize != 2 * m {
        return Err(DiskError::Corrupt {
            what: "offset endpoints",
        });
    }
    for v in 0..n {
        if u32_at(lay.offsets_at, v) > u32_at(lay.offsets_at, v + 1) {
            return Err(DiskError::Corrupt {
                what: "offsets not monotone",
            });
        }
    }
    // Edges: canonical u < v < n, strictly sorted; fold the fingerprint
    // in the same pass.
    let mut d = Digest::new();
    d.word(header.n).word(header.m);
    let mut prev: Option<(u32, u32)> = None;
    for e in 0..m {
        let (u, v) = (u32_at(lay.edges_at, 2 * e), u32_at(lay.edges_at, 2 * e + 1));
        if u >= v || v as usize >= n {
            return Err(DiskError::Corrupt {
                what: "edge endpoints not canonical",
            });
        }
        if prev.is_some_and(|p| p >= (u, v)) {
            return Err(DiskError::Corrupt {
                what: "edges not strictly sorted",
            });
        }
        prev = Some((u, v));
        d.word((u64::from(u) << 32) | u64::from(v));
    }
    let computed = d.finish();
    if computed != header.fingerprint {
        return Err(DiskError::FingerprintMismatch {
            stamped: header.fingerprint,
            computed,
        });
    }
    // Adjacency: each row sorted by neighbour, every entry consistent
    // with the edge list.
    for v in 0..n {
        let (lo, hi) = (
            u32_at(lay.offsets_at, v) as usize,
            u32_at(lay.offsets_at, v + 1) as usize,
        );
        let mut last: Option<u32> = None;
        for k in lo..hi {
            let (w, e) = (u32_at(lay.csr_at, 2 * k), u32_at(lay.csr_at, 2 * k + 1));
            if e as usize >= m {
                return Err(DiskError::Corrupt {
                    what: "adjacency edge id out of range",
                });
            }
            let (a, b) = (
                u32_at(lay.edges_at, 2 * e as usize),
                u32_at(lay.edges_at, 2 * e as usize + 1),
            );
            let (vv, ww) = (v as u32, w);
            if (vv.min(ww), vv.max(ww)) != (a, b) {
                return Err(DiskError::Corrupt {
                    what: "adjacency entry disagrees with edge list",
                });
            }
            if last.is_some_and(|l| l >= w) {
                return Err(DiskError::Corrupt {
                    what: "adjacency row not sorted",
                });
            }
            last = Some(w);
        }
    }
    Ok((header, lay))
}

fn mapped_graph(backing: Backing) -> Result<Graph, DiskError> {
    if !id_layout_is_transparent() {
        return Err(DiskError::Corrupt {
            what: "id tuple layout unsuitable for zero-copy on this target",
        });
    }
    let (header, lay) = validate(backing.bytes())?;
    Ok(Graph::from_mapped(Arc::new(MappedCsr {
        n: header.n as usize,
        m: header.m as usize,
        fingerprint: header.fingerprint,
        layout: lay,
        backing,
    })))
}

/// Loads an on-disk CSR as a mapped-tier [`Graph`]: zero-copy `mmap` on
/// unix, falling back to a buffered read (still zero-copy over the
/// in-RAM image) where mapping is unavailable or fails.
///
/// The whole file is validated once — header, section geometry, CSR
/// invariants, fingerprint stamp — so corrupted or truncated files are
/// typed errors here and can never panic the engine later.
///
/// # Errors
///
/// Any [`DiskError`]; see the variant docs.
pub fn load_mapped(path: &Path) -> Result<Graph, DiskError> {
    #[cfg(target_endian = "little")]
    {
        #[cfg(all(unix, target_pointer_width = "64"))]
        {
            let file = File::open(path)?;
            let len = file.metadata()?.len();
            if len < HEADER_LEN as u64 {
                return Err(DiskError::Truncated {
                    expected: HEADER_LEN as u64,
                    found: len,
                });
            }
            if let Ok(map) = mm::Map::new(&file, len as usize) {
                return mapped_graph(Backing::Mapped(map));
            }
        }
        load_buffered(path)
    }
    // Big-endian hosts cannot view the little-endian sections in place;
    // decode into a resident graph instead (correct, just not
    // out-of-core).
    #[cfg(not(target_endian = "little"))]
    {
        load_resident(path)
    }
}

/// Loads an on-disk CSR through a plain buffered read into an aligned
/// in-RAM image (the portable fallback behind [`load_mapped`], public
/// so tests cover it directly).
///
/// # Errors
///
/// Any [`DiskError`]; see the variant docs.
pub fn load_buffered(path: &Path) -> Result<Graph, DiskError> {
    #[cfg(target_endian = "little")]
    {
        let mut file = File::open(path)?;
        let len = file.metadata()?.len();
        let len = usize::try_from(len).map_err(|_| DiskError::TooLarge {
            what: "file exceeds the address space",
        })?;
        let mut words = vec![0u64; len.div_ceil(8)];
        // SAFETY: the Vec owns `len` writable bytes (rounded-up words).
        let buf = unsafe { std::slice::from_raw_parts_mut(words.as_mut_ptr().cast::<u8>(), len) };
        file.read_exact(buf)?;
        mapped_graph(Backing::Buffered(words, len))
    }
    #[cfg(not(target_endian = "little"))]
    {
        load_resident(path)
    }
}

/// Loads an on-disk CSR by decoding every section into resident `Vec`s
/// — the endian-independent path, and the promotion route from the
/// mapped tier back to the hot tier.
///
/// # Errors
///
/// Any [`DiskError`]; see the variant docs.
pub fn load_resident(path: &Path) -> Result<Graph, DiskError> {
    let mut file = File::open(path)?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)?;
    let (header, lay) = validate(&bytes)?;
    let (n, m) = (header.n as usize, header.m as usize);
    let u32_at = |at: usize, i: usize| -> u32 {
        let b = &bytes[at + 4 * i..at + 4 * i + 4];
        u32::from_le_bytes([b[0], b[1], b[2], b[3]])
    };
    let offsets: Vec<u32> = (0..=n).map(|i| u32_at(lay.offsets_at, i)).collect();
    let edges: Vec<(NodeId, NodeId)> = (0..m)
        .map(|e| {
            (
                NodeId::from(u32_at(lay.edges_at, 2 * e)),
                NodeId::from(u32_at(lay.edges_at, 2 * e + 1)),
            )
        })
        .collect();
    let csr: Vec<(NodeId, EdgeId)> = (0..2 * m)
        .map(|k| {
            (
                NodeId::from(u32_at(lay.csr_at, 2 * k)),
                EdgeId::from(u32_at(lay.csr_at, 2 * k + 1)),
            )
        })
        .collect();
    Ok(Graph::from_parts(n, edges, csr, offsets))
}

fn sibling_path(path: &Path, suffix: &str) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(suffix);
    PathBuf::from(os)
}

/// Writes `graph` to `path` in the on-disk CSR format (via a sibling
/// temp file renamed into place, so readers never observe a partial
/// file). Returns the stamped fingerprint.
///
/// # Errors
///
/// [`DiskError::Io`] on filesystem failure, [`DiskError::TooLarge`] if
/// the graph exceeds format limits.
pub fn save(graph: &Graph, path: &Path) -> Result<Fingerprint, DiskError> {
    let (offsets, csr, edges) = graph.raw_parts();
    let n = graph.n() as u64;
    let m = edges.len() as u64;
    let lay = layout(n, m)?;
    let fingerprint = graph.fingerprint();
    let tmp = sibling_path(path, ".tmp");
    {
        let file = File::create(&tmp)?;
        let mut w = BufWriter::new(&file);
        w.write_all(&encode_header(n, m, fingerprint, lay.file_len))?;
        for &o in offsets {
            w.write_all(&o.to_le_bytes())?;
        }
        for _ in (HEADER_LEN + offsets.len() * 4)..lay.edges_at {
            w.write_all(&[0u8])?;
        }
        for &(u, v) in edges {
            w.write_all(&u.raw().to_le_bytes())?;
            w.write_all(&v.raw().to_le_bytes())?;
        }
        for &(w_, e) in csr {
            w.write_all(&w_.raw().to_le_bytes())?;
            w.write_all(&e.raw().to_le_bytes())?;
        }
        w.flush()?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(fingerprint)
}

/// A re-iterable edge producer the streaming builder can walk twice
/// (count pass, then place pass). Duplicates and either endpoint order
/// are fine; both passes must produce the identical multiset.
pub trait EdgeSource {
    /// Number of nodes (fixed across both passes).
    fn n(&self) -> usize;

    /// Streams every edge once through `emit`.
    ///
    /// # Errors
    ///
    /// Propagates source errors and any error returned by `emit`.
    fn stream(
        &mut self,
        emit: &mut dyn FnMut(usize, usize) -> Result<(), DiskError>,
    ) -> Result<(), DiskError>;
}

/// An edge-list text file (the [`crate::io`] format) as a re-iterable
/// [`EdgeSource`]: each pass re-opens and re-parses the file with a
/// line-buffered reader, so the edges never exist in RAM at once.
pub struct EdgeListSource {
    path: PathBuf,
    n: usize,
    declared_m: usize,
}

impl EdgeListSource {
    /// Opens `path` and parses its `n m` header (edges stay on disk).
    ///
    /// # Errors
    ///
    /// [`DiskError::Io`] on open failure, [`DiskError::Parse`] on a bad
    /// header line.
    pub fn open(path: &Path) -> Result<Self, DiskError> {
        let file = File::open(path)?;
        let mut lines = io::BufRead::lines(BufReader::new(file));
        let header = loop {
            match lines.next() {
                Some(line) => {
                    let line = line?;
                    let t = line.trim();
                    if !t.is_empty() && !t.starts_with('#') {
                        break t.to_string();
                    }
                }
                None => return Err(DiskError::Parse(ParseGraphError::BadHeader)),
            }
        };
        let mut it = header.split_whitespace();
        let (n, m) = match (it.next(), it.next(), it.next()) {
            (Some(n), Some(m), None) => (
                n.parse::<usize>()
                    .map_err(|_| DiskError::Parse(ParseGraphError::BadHeader))?,
                m.parse::<usize>()
                    .map_err(|_| DiskError::Parse(ParseGraphError::BadHeader))?,
            ),
            _ => return Err(DiskError::Parse(ParseGraphError::BadHeader)),
        };
        Ok(EdgeListSource {
            path: path.to_path_buf(),
            n,
            declared_m: m,
        })
    }
}

impl EdgeSource for EdgeListSource {
    fn n(&self) -> usize {
        self.n
    }

    fn stream(
        &mut self,
        emit: &mut dyn FnMut(usize, usize) -> Result<(), DiskError>,
    ) -> Result<(), DiskError> {
        let file = File::open(&self.path)?;
        let mut seen_header = false;
        let mut found = 0usize;
        for (i, line) in io::BufRead::lines(BufReader::new(file)).enumerate() {
            let line = line?;
            let t = line.trim();
            if t.is_empty() || t.starts_with('#') {
                continue;
            }
            if !seen_header {
                seen_header = true;
                continue;
            }
            let mut it = t.split_whitespace();
            let (u, v) = match (it.next(), it.next(), it.next()) {
                (Some(u), Some(v), None) => (
                    u.parse::<usize>().map_err(|_| {
                        DiskError::Parse(ParseGraphError::BadEdgeLine { line: i + 1 })
                    })?,
                    v.parse::<usize>().map_err(|_| {
                        DiskError::Parse(ParseGraphError::BadEdgeLine { line: i + 1 })
                    })?,
                ),
                _ => {
                    return Err(DiskError::Parse(ParseGraphError::BadEdgeLine {
                        line: i + 1,
                    }))
                }
            };
            found += 1;
            emit(u, v)?;
        }
        if found != self.declared_m {
            return Err(DiskError::Parse(ParseGraphError::MissingEdges {
                expected: self.declared_m,
                found,
            }));
        }
        Ok(())
    }
}

impl EdgeSource for crate::generators::spec::StreamableSpec {
    fn n(&self) -> usize {
        self.n()
    }

    fn stream(
        &mut self,
        emit: &mut dyn FnMut(usize, usize) -> Result<(), DiskError>,
    ) -> Result<(), DiskError> {
        self.for_each_edge(emit)
    }
}

/// Statistics from one [`stream_to_disk`] build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamStats {
    /// Nodes in the built graph.
    pub n: usize,
    /// Edges streamed from the source (duplicates included).
    pub streamed: u64,
    /// Edges in the built graph after canonicalization and dedup.
    pub m: usize,
    /// Content fingerprint stamped into the file (identical to what
    /// the resident builder would produce for the same edge set).
    pub fingerprint: Fingerprint,
}

/// Batches positioned 8-byte record writes, sorts each batch by target
/// position and coalesces consecutive runs into single `pwrite`s — the
/// counting-sort place pass touches positions in near-bucket order, so
/// most batches collapse to a handful of large writes.
struct PlacedWriter<'a> {
    file: &'a File,
    base: u64,
    staged: Vec<(u64, u64)>,
}

const PLACE_BATCH: usize = 1 << 16;

impl<'a> PlacedWriter<'a> {
    fn new(file: &'a File, base: u64) -> Self {
        PlacedWriter {
            file,
            base,
            staged: Vec::with_capacity(PLACE_BATCH),
        }
    }

    fn place(&mut self, index: u64, word: u64) -> io::Result<()> {
        self.staged.push((index, word));
        if self.staged.len() == PLACE_BATCH {
            self.flush()?;
        }
        Ok(())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.staged.sort_unstable_by_key(|&(i, _)| i);
        let mut buf: Vec<u8> = Vec::with_capacity(8 * 1024);
        let mut k = 0;
        while k < self.staged.len() {
            let run_start = self.staged[k].0;
            buf.clear();
            buf.extend_from_slice(&self.staged[k].1.to_le_bytes());
            let mut next = run_start + 1;
            k += 1;
            while k < self.staged.len() && self.staged[k].0 == next {
                buf.extend_from_slice(&self.staged[k].1.to_le_bytes());
                next += 1;
                k += 1;
            }
            write_all_at(self.file, &buf, self.base + run_start * 8)?;
        }
        self.staged.clear();
        Ok(())
    }
}

fn write_all_at(file: &File, buf: &[u8], off: u64) -> io::Result<()> {
    #[cfg(unix)]
    {
        std::os::unix::fs::FileExt::write_all_at(file, buf, off)
    }
    #[cfg(not(unix))]
    {
        let mut f = file;
        f.seek(SeekFrom::Start(off))?;
        f.write_all(buf)
    }
}

/// Builds an on-disk CSR at `path` directly from `source` without ever
/// materializing the edge vector in RAM: a two-pass counting sort.
///
/// Pass 1 streams the source counting edges per smaller endpoint (an
/// `O(n)` table). Pass 2 streams again, placing each canonical pair
/// into its bucket in a scratch file via batched positioned writes.
/// The finish phase reads buckets back in node order — each bucket is
/// at most one node's raw degree, the only per-bucket RAM — sorting and
/// deduplicating locally, which yields the final edge section in
/// canonical order; offsets prefix-sum from the deduplicated degrees
/// and the adjacency section fills through the same batched placer. The
/// fingerprint folds during a final sequential rescan, so the stamp is
/// bit-identical to the resident builder's.
///
/// Peak memory is `O(n)` words plus one bucket, independent of `m`.
///
/// # Errors
///
/// Source errors pass through; invalid edges surface as
/// [`DiskError::Graph`], format overflows as [`DiskError::TooLarge`].
pub fn stream_to_disk(source: &mut dyn EdgeSource, path: &Path) -> Result<StreamStats, DiskError> {
    let n = source.n();
    if n as u64 >= u64::from(u32::MAX) {
        return Err(DiskError::TooLarge {
            what: "node count exceeds u32 ids",
        });
    }
    // Pass 1: count per smaller endpoint.
    let mut counts = vec![0u32; n];
    let mut streamed = 0u64;
    source.stream(&mut |u, v| {
        if u >= n {
            return Err(DiskError::Graph(crate::GraphError::NodeOutOfRange {
                node: u,
                n,
            }));
        }
        if v >= n {
            return Err(DiskError::Graph(crate::GraphError::NodeOutOfRange {
                node: v,
                n,
            }));
        }
        if u == v {
            return Err(DiskError::Graph(crate::GraphError::SelfLoop { node: u }));
        }
        let lo = u.min(v);
        counts[lo] = counts[lo].checked_add(1).ok_or(DiskError::TooLarge {
            what: "bucket exceeds u32 entries",
        })?;
        streamed += 1;
        Ok(())
    })?;
    // Bucket starts in the scratch file (u64: pre-dedup total may pass
    // the u32 budget that only applies post-dedup).
    let mut starts = vec![0u64; n + 1];
    for v in 0..n {
        starts[v + 1] = starts[v] + u64::from(counts[v]);
    }
    debug_assert_eq!(starts[n], streamed);

    // Pass 2: place canonical pairs into their buckets.
    let scratch_path = sibling_path(path, ".scratch");
    let tmp_path = sibling_path(path, ".tmp");
    let result = (|| -> Result<StreamStats, DiskError> {
        let scratch = File::options()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&scratch_path)?;
        scratch.set_len(streamed * 8)?;
        {
            let mut placer = PlacedWriter::new(&scratch, 0);
            let mut cursor = vec![0u32; n];
            let mut replayed = 0u64;
            source.stream(&mut |u, v| {
                let (lo, hi) = (u.min(v) as u64, u.max(v) as u64);
                let slot = starts[lo as usize] + u64::from(cursor[lo as usize]);
                cursor[lo as usize] += 1;
                replayed += 1;
                if replayed > streamed {
                    return Err(DiskError::Corrupt {
                        what: "edge source changed between passes",
                    });
                }
                placer.place(slot, (lo << 32) | hi).map_err(DiskError::from)
            })?;
            if replayed != streamed {
                return Err(DiskError::Corrupt {
                    what: "edge source changed between passes",
                });
            }
            placer.flush()?;
        }

        // Finish 1: sweep buckets in node order, sort+dedup each, write
        // the canonical edge section sequentially and collect final
        // degrees.
        let out = File::options()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp_path)?;
        let mut deg = vec![0u32; n];
        let mut m = 0u64;
        {
            let mut scratch_reader = BufReader::with_capacity(1 << 20, &scratch);
            scratch_reader.seek(SeekFrom::Start(0))?;
            // Edge section start is independent of m, so sequential
            // writing can begin before m is known.
            let edges_at = align8(HEADER_LEN as u64 + (n as u64 + 1) * 4);
            (&out).seek(SeekFrom::Start(edges_at))?;
            let mut edge_writer = BufWriter::with_capacity(1 << 20, &out);
            let mut bucket: Vec<u64> = Vec::new();
            let mut word8 = [0u8; 8];
            for u in 0..n {
                let len = (starts[u + 1] - starts[u]) as usize;
                bucket.clear();
                bucket.reserve(len);
                for _ in 0..len {
                    scratch_reader.read_exact(&mut word8)?;
                    bucket.push(u64::from_le_bytes(word8));
                }
                bucket.sort_unstable();
                bucket.dedup();
                for &word in &bucket {
                    let v = (word & 0xffff_ffff) as usize;
                    edge_writer.write_all(&(u as u32).to_le_bytes())?;
                    edge_writer.write_all(&((word & 0xffff_ffff) as u32).to_le_bytes())?;
                    deg[u] += 1;
                    deg[v] += 1;
                    m += 1;
                }
            }
            edge_writer.flush()?;
        }
        let lay = layout(n as u64, m)?;
        out.set_len(lay.file_len)?;

        // Offsets: prefix-sum of the deduplicated degrees.
        let mut offsets = vec![0u32; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + deg[v];
        }
        {
            (&out).seek(SeekFrom::Start(lay.offsets_at as u64))?;
            let mut w = BufWriter::with_capacity(1 << 20, &out);
            for &o in &offsets {
                w.write_all(&o.to_le_bytes())?;
            }
            w.flush()?;
        }

        // Finish 2: rescan the edge section sequentially — the scan
        // order is the canonical edge order, so the adjacency rows come
        // out neighbour-sorted exactly as in the resident builder — and
        // fold the fingerprint in the same pass.
        let mut digest = Digest::new();
        digest.word(n as u64).word(m);
        let mut cursor = offsets[..n].to_vec();
        {
            // Separate handle: the reader's cursor must not share state
            // with the placer's positioned writes.
            let out_read = File::open(&tmp_path)?;
            let mut edge_reader = BufReader::with_capacity(1 << 20, out_read);
            edge_reader.seek(SeekFrom::Start(lay.edges_at as u64))?;
            let mut placer = PlacedWriter::new(&out, lay.csr_at as u64);
            let mut pair = [0u8; 8];
            for e in 0..m {
                edge_reader.read_exact(&mut pair)?;
                let u = u32::from_le_bytes([pair[0], pair[1], pair[2], pair[3]]);
                let v = u32::from_le_bytes([pair[4], pair[5], pair[6], pair[7]]);
                digest.word((u64::from(u) << 32) | u64::from(v));
                let e = e as u32;
                placer.place(
                    u64::from(cursor[u as usize]),
                    u64::from(v) | (u64::from(e) << 32),
                )?;
                cursor[u as usize] += 1;
                placer.place(
                    u64::from(cursor[v as usize]),
                    u64::from(u) | (u64::from(e) << 32),
                )?;
                cursor[v as usize] += 1;
            }
            placer.flush()?;
        }
        let fingerprint = digest.finish();
        write_all_at(
            &out,
            &encode_header(n as u64, m, fingerprint, lay.file_len),
            0,
        )?;
        out.sync_all()?;
        Ok(StreamStats {
            n,
            streamed,
            m: m as usize,
            fingerprint,
        })
    })();
    let _ = std::fs::remove_file(&scratch_path);
    match result {
        Ok(stats) => {
            std::fs::rename(&tmp_path, path)?;
            Ok(stats)
        }
        Err(e) => {
            let _ = std::fs::remove_file(&tmp_path);
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::spec;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("planartest-disk-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn roundtrip(g: &Graph, path: &Path) {
        let fp = save(g, path).unwrap();
        assert_eq!(fp, g.fingerprint());
        for loaded in [
            load_mapped(path).unwrap(),
            load_buffered(path).unwrap(),
            load_resident(path).unwrap(),
        ] {
            assert_eq!(loaded.fingerprint(), g.fingerprint());
            assert_eq!(&loaded, g);
            assert_eq!(loaded.n(), g.n());
            assert_eq!(loaded.m(), g.m());
            for v in g.nodes() {
                assert_eq!(loaded.neighbors(v), g.neighbors(v));
            }
        }
        assert!(load_mapped(path).unwrap().is_mapped());
        assert!(!load_resident(path).unwrap().is_mapped());
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = tmp_dir("roundtrip");
        for (i, spec_text) in ["grid(7,9)", "k5_chain(4)", "complete(9)", "path(1)"]
            .iter()
            .enumerate()
        {
            let g = spec::parse(spec_text).unwrap().graph;
            roundtrip(&g, &dir.join(format!("g{i}.csr")));
        }
        // Edge-free and tiny graphs exercise the degenerate geometry.
        roundtrip(&Graph::empty(5), &dir.join("empty.csr"));
        roundtrip(&Graph::empty(0), &dir.join("zero.csr"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_files_are_typed_errors() {
        let dir = tmp_dir("corrupt");
        let path = dir.join("g.csr");
        let g = spec::parse("tri_grid(5,6)").unwrap().graph;
        save(&g, &path).unwrap();
        let pristine = std::fs::read(&path).unwrap();

        let reload = |bytes: &[u8]| {
            std::fs::write(&path, bytes).unwrap();
            load_mapped(&path).unwrap_err()
        };

        let mut bad = pristine.clone();
        bad[0] ^= 0xff;
        assert_eq!(reload(&bad), DiskError::BadMagic);

        let mut bad = pristine.clone();
        bad[8..12].reverse();
        assert_eq!(reload(&bad), DiskError::WrongEndian);

        let mut bad = pristine.clone();
        bad[12] = 99;
        assert_eq!(reload(&bad), DiskError::BadVersion { found: 99 });

        assert!(matches!(
            reload(&pristine[..pristine.len() - 4]),
            DiskError::Truncated { .. }
        ));
        assert!(matches!(
            reload(&pristine[..40]),
            DiskError::Truncated { .. }
        ));

        // Flip one neighbour id in the adjacency section.
        let mut bad = pristine.clone();
        let last = bad.len() - 8;
        bad[last] ^= 0x01;
        assert!(matches!(reload(&bad), DiskError::Corrupt { .. }));

        // Flip an edge endpoint: fingerprint catches it.
        let mut bad = pristine.clone();
        bad[HEADER_LEN + (g.n() + 1) * 4 + 12] ^= 0x02;
        assert!(matches!(
            reload(&bad),
            DiskError::Corrupt { .. } | DiskError::FingerprintMismatch { .. }
        ));

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn streaming_build_matches_materialized() {
        let dir = tmp_dir("stream");
        for spec_text in [
            "path(40)",
            "cycle(17)",
            "star(23)",
            "grid(12,9)",
            "tri_grid(6,11)",
            "complete(13)",
            "complete_bipartite(5,8)",
            "k5_chain(6)",
            "torus(4,7)",
            "hypercube(6)",
        ] {
            let resident = spec::parse(spec_text).unwrap();
            let mut src = spec::streamable(spec_text).unwrap().unwrap();
            assert_eq!(src.m(), resident.graph.m(), "{spec_text}");
            assert_eq!(src.status(), resident.status, "{spec_text}");
            let path = dir.join("s.csr");
            let stats = stream_to_disk(&mut src, &path).unwrap();
            assert_eq!(stats.m, resident.graph.m(), "{spec_text}");
            assert_eq!(
                stats.fingerprint,
                resident.graph.fingerprint(),
                "{spec_text}"
            );
            let mapped = load_mapped(&path).unwrap();
            assert_eq!(mapped, resident.graph, "{spec_text}");
            for v in mapped.nodes() {
                assert_eq!(
                    mapped.neighbors(v),
                    resident.graph.neighbors(v),
                    "{spec_text}"
                );
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn streaming_build_from_edge_list_dedups() {
        let dir = tmp_dir("edgelist");
        let text = "# comment\n4 5\n0 1\n1 0\n2 3\n1 2\n0 1\n";
        let list = dir.join("g.txt");
        std::fs::write(&list, text).unwrap();
        let mut src = EdgeListSource::open(&list).unwrap();
        let path = dir.join("g.csr");
        let stats = stream_to_disk(&mut src, &path).unwrap();
        assert_eq!(stats.streamed, 5);
        assert_eq!(stats.m, 3);
        let expected = crate::io::from_edge_list(text).unwrap();
        assert_eq!(load_mapped(&path).unwrap(), expected);
        assert_eq!(stats.fingerprint, expected.fingerprint());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalid_source_edges_are_typed() {
        let dir = tmp_dir("badsrc");
        let list = dir.join("g.txt");
        std::fs::write(&list, "3 1\n1 1\n").unwrap();
        let mut src = EdgeListSource::open(&list).unwrap();
        let err = stream_to_disk(&mut src, &dir.join("g.csr")).unwrap_err();
        assert_eq!(
            err,
            DiskError::Graph(crate::GraphError::SelfLoop { node: 1 })
        );
        std::fs::write(&list, "3 1\n0 7\n").unwrap();
        let mut src = EdgeListSource::open(&list).unwrap();
        let err = stream_to_disk(&mut src, &dir.join("g.csr")).unwrap_err();
        assert!(matches!(err, DiskError::Graph(_)));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
