//! Core graph representation: an immutable, undirected simple graph.

use std::fmt;

/// Identifier of a node in a [`Graph`].
///
/// Node ids are dense indices in `0..g.n()`. In the CONGEST model each node
/// knows its own id and learns neighbours' ids over edges; ids fit in a
/// single `O(log n)`-bit message word.
///
/// The id is `repr(transparent)` over `u32` so CSR arrays of ids can be
/// reinterpreted byte-for-byte by the on-disk format in [`crate::disk`].
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[repr(transparent)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    pub fn new(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index exceeds u32"))
    }

    /// Returns the dense index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value (useful for packing into messages).
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for NodeId {
    #[inline]
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// Identifier of an undirected edge in a [`Graph`].
///
/// Edge ids are dense indices in `0..g.m()`, in the order edges were added.
///
/// `repr(transparent)` over `u32` for the same zero-copy reason as
/// [`NodeId`].
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[repr(transparent)]
pub struct EdgeId(u32);

impl EdgeId {
    /// Creates an edge id from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    pub fn new(index: usize) -> Self {
        EdgeId(u32::try_from(index).expect("edge index exceeds u32"))
    }

    /// Returns the dense index of this edge.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl From<u32> for EdgeId {
    #[inline]
    fn from(v: u32) -> Self {
        EdgeId(v)
    }
}

/// Error produced when constructing an invalid [`Graph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge endpoint was `>= n`.
    NodeOutOfRange {
        /// The offending endpoint.
        node: usize,
        /// The number of nodes in the graph under construction.
        n: usize,
    },
    /// An edge had both endpoints equal.
    SelfLoop {
        /// The node with the self-loop.
        node: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(
                    f,
                    "edge endpoint {node} out of range for graph with {n} nodes"
                )
            }
            GraphError::SelfLoop { node } => write!(f, "self-loop at node {node}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// An immutable, undirected simple graph in CSR (compressed sparse row)
/// layout.
///
/// Nodes are `0..n`, edges are stored once with canonical orientation
/// `u < v` and identified by [`EdgeId`]. Adjacency is a single flat
/// array of `(neighbour, edge id)` pairs — node `v`'s neighbours are the
/// contiguous slice `csr[offsets[v]..offsets[v + 1]]`, sorted by
/// neighbour — so a whole-graph sweep is one linear pass over memory and
/// membership tests are `O(log deg)` binary searches.
///
/// # Example
///
/// ```
/// use planartest_graph::Graph;
///
/// let g = Graph::from_edges(3, [(0, 1), (1, 2)])?;
/// assert_eq!(g.degree(1.into()), 2);
/// assert!(g.has_edge(0.into(), 1.into()));
/// assert!(!g.has_edge(0.into(), 2.into()));
/// # Ok::<(), planartest_graph::GraphError>(())
/// ```
#[derive(Clone)]
pub struct Graph {
    n: usize,
    store: Store,
}

/// The physical backing of a [`Graph`]'s three CSR arrays.
///
/// `Resident` is the hot tier: plain `Vec`s owned by the graph.
/// `Mapped` is the cold tier: the same arrays viewed zero-copy inside a
/// memory-mapped (or buffered-read) on-disk CSR file, shared via `Arc`
/// so cloning a mapped graph never touches the data. Every accessor
/// dispatches through one `match`, so the engine, batch lanes, and all
/// testers run unchanged over either backing.
#[derive(Clone)]
enum Store {
    Resident {
        /// Canonical endpoints, `edges[e] = (u, v)` with `u < v`.
        edges: Vec<(NodeId, NodeId)>,
        /// Flat adjacency: `2m` `(neighbour, edge id)` entries, grouped
        /// by source node, each group sorted by neighbour id.
        csr: Vec<(NodeId, EdgeId)>,
        /// `n + 1` row offsets into `csr`; node `v` owns
        /// `csr[offsets[v] as usize..offsets[v + 1] as usize]`.
        offsets: Vec<u32>,
    },
    Mapped(std::sync::Arc<crate::disk::MappedCsr>),
}

impl PartialEq for Graph {
    /// Content equality: node count plus canonical edge list. The CSR
    /// adjacency is derived data and the backing tier is irrelevant —
    /// a mapped graph equals its resident twin.
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n && self.edge_slice() == other.edge_slice()
    }
}

impl Eq for Graph {}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("n", &self.n)
            .field("m", &self.m())
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

impl Graph {
    /// Builds a graph with `n` nodes from an edge iterator.
    ///
    /// Parallel edges are collapsed; endpoint order is irrelevant.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] or [`GraphError::SelfLoop`] on
    /// invalid input.
    pub fn from_edges<I>(n: usize, edges: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = (usize, usize)>,
    {
        let mut b = GraphBuilder::new(n);
        for (u, v) in edges {
            b.add_edge(u, v)?;
        }
        Ok(b.build())
    }

    /// Creates a graph with `n` nodes and no edges.
    pub fn empty(n: usize) -> Self {
        Graph {
            n,
            store: Store::Resident {
                edges: Vec::new(),
                csr: Vec::new(),
                offsets: vec![0; n + 1],
            },
        }
    }

    /// Assembles a resident graph from pre-validated CSR parts.
    ///
    /// Crate-internal: callers (the builder, the disk loaders) must
    /// uphold the CSR invariants — canonical sorted deduped `edges`,
    /// rows sorted by neighbour, `offsets` a prefix-sum with
    /// `offsets[n] == 2m`.
    pub(crate) fn from_parts(
        n: usize,
        edges: Vec<(NodeId, NodeId)>,
        csr: Vec<(NodeId, EdgeId)>,
        offsets: Vec<u32>,
    ) -> Self {
        Graph {
            n,
            store: Store::Resident {
                edges,
                csr,
                offsets,
            },
        }
    }

    /// Wraps a loaded on-disk CSR as a mapped-tier graph.
    pub(crate) fn from_mapped(map: std::sync::Arc<crate::disk::MappedCsr>) -> Self {
        Graph {
            n: map.n(),
            store: Store::Mapped(map),
        }
    }

    /// Whether this graph is backed by an on-disk mapping (cold tier)
    /// rather than resident `Vec`s.
    #[inline]
    pub fn is_mapped(&self) -> bool {
        matches!(self.store, Store::Mapped(_))
    }

    /// Canonical edge list slice, whatever the backing.
    #[inline]
    fn edge_slice(&self) -> &[(NodeId, NodeId)] {
        match &self.store {
            Store::Resident { edges, .. } => edges,
            Store::Mapped(m) => m.edges(),
        }
    }

    /// Flat adjacency slice, whatever the backing.
    #[inline]
    fn csr_slice(&self) -> &[(NodeId, EdgeId)] {
        match &self.store {
            Store::Resident { csr, .. } => csr,
            Store::Mapped(m) => m.csr(),
        }
    }

    /// Row-offset slice (`n + 1` entries), whatever the backing.
    #[inline]
    fn offset_slice(&self) -> &[u32] {
        match &self.store {
            Store::Resident { offsets, .. } => offsets,
            Store::Mapped(m) => m.offsets(),
        }
    }

    /// The three raw CSR arrays, for the on-disk writer.
    #[allow(clippy::type_complexity)]
    pub(crate) fn raw_parts(&self) -> (&[u32], &[(NodeId, EdgeId)], &[(NodeId, NodeId)]) {
        (self.offset_slice(), self.csr_slice(), self.edge_slice())
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.edge_slice().len()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.n).map(NodeId::new)
    }

    /// Iterator over all edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.m()).map(EdgeId::new)
    }

    /// Canonical endpoints `(u, v)` with `u < v` of edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    #[inline]
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        self.edge_slice()[e.index()]
    }

    /// Iterator over canonical edge endpoint pairs in edge-id order.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.edge_slice().iter().copied()
    }

    /// The endpoint of `e` that is not `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not an endpoint of `e`.
    #[inline]
    pub fn other_endpoint(&self, e: EdgeId, v: NodeId) -> NodeId {
        let (a, b) = self.endpoints(e);
        if a == v {
            b
        } else {
            assert_eq!(b, v, "node {v:?} is not an endpoint of {e:?}");
            a
        }
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        let offsets = self.offset_slice();
        (offsets[v.index() + 1] - offsets[v.index()]) as usize
    }

    /// Neighbours of `v` with the connecting edge id, sorted by neighbour.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[(NodeId, EdgeId)] {
        let offsets = self.offset_slice();
        &self.csr_slice()[offsets[v.index()] as usize..offsets[v.index() + 1] as usize]
    }

    /// Whether `{u, v}` is an edge (binary search over the sorted CSR
    /// neighbour slice, `O(log deg u)`).
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.edge_between(u, v).is_some()
    }

    /// The edge id connecting `u` and `v`, if any.
    #[inline]
    pub fn edge_between(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        let a = self.neighbors(u);
        a.binary_search_by_key(&v, |&(w, _)| w).ok().map(|i| a[i].1)
    }

    /// Stable 128-bit content fingerprint of the graph: `n` plus the
    /// canonical edge list, folded through
    /// [`fingerprint::Digest`](crate::fingerprint::Digest).
    ///
    /// Two graphs fingerprint equal iff they have the same node count
    /// and the same edge set (the builder canonicalizes edge order, so
    /// insertion order never matters). This is the identity the query
    /// service's graph registry and result cache key on.
    #[must_use]
    pub fn fingerprint(&self) -> crate::fingerprint::Fingerprint {
        if let Store::Mapped(m) = &self.store {
            // The on-disk header stamps the fingerprint; the loader
            // verified it against the mapped content, so no rescan.
            return m.fingerprint();
        }
        let mut d = crate::fingerprint::Digest::new();
        d.word(self.n as u64).word(self.m() as u64);
        for &(u, v) in self.edge_slice() {
            d.word((u64::from(u.raw()) << 32) | u64::from(v.raw()));
        }
        d.finish()
    }

    /// Maximum degree over all nodes (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.offset_slice()
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .max()
            .unwrap_or(0)
    }

    /// Sum of degrees divided by `n` (0.0 for the empty graph).
    pub fn average_degree(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            2.0 * self.m() as f64 / self.n as f64
        }
    }

    /// Returns the subgraph induced by `keep_edge`, on the same node set.
    ///
    /// Edge ids are re-assigned densely; the mapping is returned alongside
    /// as `old_edge_ids[new] = old`.
    pub fn edge_subgraph<F>(&self, mut keep_edge: F) -> (Graph, Vec<EdgeId>)
    where
        F: FnMut(EdgeId) -> bool,
    {
        let mut b = GraphBuilder::new(self.n);
        let mut map = Vec::new();
        for e in self.edge_ids() {
            if keep_edge(e) {
                let (u, v) = self.endpoints(e);
                b.add_edge(u.index(), v.index())
                    .expect("edges already valid");
                map.push(e);
            }
        }
        (b.build(), map)
    }

    /// Returns the subgraph induced by the node set `keep` (given as a
    /// membership predicate over the *original* ids), with nodes renumbered
    /// densely.
    ///
    /// Returns the graph together with `orig_of[new] = original id`.
    pub fn induced_subgraph<F>(&self, mut keep: F) -> (Graph, Vec<NodeId>)
    where
        F: FnMut(NodeId) -> bool,
    {
        let mut new_of = vec![usize::MAX; self.n];
        let mut orig_of = Vec::new();
        for v in self.nodes() {
            if keep(v) {
                new_of[v.index()] = orig_of.len();
                orig_of.push(v);
            }
        }
        let mut b = GraphBuilder::new(orig_of.len());
        for (u, v) in self.edges() {
            let (nu, nv) = (new_of[u.index()], new_of[v.index()]);
            if nu != usize::MAX && nv != usize::MAX {
                b.add_edge(nu, nv).expect("validated");
            }
        }
        (b.build(), orig_of)
    }
}

/// Incremental, validated construction of a [`Graph`].
///
/// # Example
///
/// ```
/// use planartest_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1)?;
/// b.add_edge(1, 0)?; // duplicate, collapsed
/// let g = b.build();
/// assert_eq!(g.m(), 1);
/// # Ok::<(), planartest_graph::GraphError>(())
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(usize, usize)>,
}

impl GraphBuilder {
    /// Starts building a graph on `n` nodes.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Adds an undirected edge; duplicates are collapsed at [`build`] time.
    ///
    /// # Errors
    ///
    /// Rejects self-loops and out-of-range endpoints.
    ///
    /// [`build`]: GraphBuilder::build
    pub fn add_edge(&mut self, u: usize, v: usize) -> Result<(), GraphError> {
        if u >= self.n {
            return Err(GraphError::NodeOutOfRange { node: u, n: self.n });
        }
        if v >= self.n {
            return Err(GraphError::NodeOutOfRange { node: v, n: self.n });
        }
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        self.edges.push((u.min(v), u.max(v)));
        Ok(())
    }

    /// Finishes construction, collapsing duplicate edges.
    ///
    /// The CSR adjacency is filled in one counting-sort pass over the
    /// sorted edge list. No per-node sort is needed: scanning canonical
    /// edges in `(u, v)` order writes each node's smaller neighbours
    /// (where it is the second endpoint) in ascending order first, then
    /// its larger neighbours (where it is the first endpoint) in
    /// ascending order — the row comes out sorted by neighbour id.
    pub fn build(mut self) -> Graph {
        self.edges.sort_unstable();
        self.edges.dedup();
        let m = self.edges.len();
        u32::try_from(2 * m).expect("adjacency entries exceed u32 offsets");
        let mut offsets = vec![0u32; self.n + 1];
        for &(u, v) in &self.edges {
            offsets[u + 1] += 1;
            offsets[v + 1] += 1;
        }
        for i in 0..self.n {
            offsets[i + 1] += offsets[i];
        }
        // `cursor[v]` = next free slot in v's row.
        let mut cursor: Vec<u32> = offsets[..self.n].to_vec();
        let mut edges = Vec::with_capacity(m);
        let mut csr = vec![(NodeId::default(), EdgeId::default()); 2 * m];
        for &(u, v) in &self.edges {
            let e = EdgeId::new(edges.len());
            let (u, v) = (NodeId::new(u), NodeId::new(v));
            edges.push((u, v));
            csr[cursor[u.index()] as usize] = (v, e);
            cursor[u.index()] += 1;
            csr[cursor[v.index()] as usize] = (u, e);
            cursor[v.index()] += 1;
        }
        debug_assert!((0..self.n).all(|v| {
            csr[offsets[v] as usize..offsets[v + 1] as usize].is_sorted_by_key(|&(w, _)| w)
        }));
        Graph::from_parts(self.n, edges, csr, offsets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = Graph::empty(5);
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.average_degree(), 0.0);
    }

    #[test]
    fn zero_node_graph() {
        let g = Graph::empty(0);
        assert_eq!(g.n(), 0);
        assert_eq!(g.nodes().count(), 0);
        assert_eq!(g.average_degree(), 0.0);
    }

    #[test]
    fn basic_construction() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]).unwrap();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 5);
        assert_eq!(g.degree(NodeId::new(0)), 3);
        assert_eq!(g.degree(NodeId::new(3)), 2);
        assert!(g.has_edge(NodeId::new(0), NodeId::new(2)));
        assert!(!g.has_edge(NodeId::new(1), NodeId::new(3)));
    }

    #[test]
    fn duplicate_edges_collapse() {
        let g = Graph::from_edges(3, [(0, 1), (1, 0), (0, 1)]).unwrap();
        assert_eq!(g.m(), 1);
    }

    #[test]
    fn self_loop_rejected() {
        let err = Graph::from_edges(3, [(1, 1)]).unwrap_err();
        assert_eq!(err, GraphError::SelfLoop { node: 1 });
    }

    #[test]
    fn out_of_range_rejected() {
        let err = Graph::from_edges(3, [(0, 3)]).unwrap_err();
        assert_eq!(err, GraphError::NodeOutOfRange { node: 3, n: 3 });
        let msg = err.to_string();
        assert!(msg.contains("out of range"));
    }

    #[test]
    fn endpoints_are_canonical() {
        let g = Graph::from_edges(3, [(2, 0)]).unwrap();
        let e = EdgeId::new(0);
        assert_eq!(g.endpoints(e), (NodeId::new(0), NodeId::new(2)));
        assert_eq!(g.other_endpoint(e, NodeId::new(0)), NodeId::new(2));
        assert_eq!(g.other_endpoint(e, NodeId::new(2)), NodeId::new(0));
    }

    #[test]
    #[should_panic(expected = "is not an endpoint")]
    fn other_endpoint_panics_for_non_endpoint() {
        let g = Graph::from_edges(3, [(0, 2)]).unwrap();
        let _ = g.other_endpoint(EdgeId::new(0), NodeId::new(1));
    }

    #[test]
    fn neighbors_sorted_and_edge_between() {
        let g = Graph::from_edges(5, [(2, 4), (2, 0), (2, 3), (2, 1)]).unwrap();
        let ns: Vec<usize> = g
            .neighbors(NodeId::new(2))
            .iter()
            .map(|&(w, _)| w.index())
            .collect();
        assert_eq!(ns, vec![0, 1, 3, 4]);
        for &(w, e) in g.neighbors(NodeId::new(2)) {
            assert_eq!(g.edge_between(NodeId::new(2), w), Some(e));
        }
        assert_eq!(g.edge_between(NodeId::new(0), NodeId::new(1)), None);
    }

    #[test]
    fn edge_subgraph_keeps_node_set() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let (h, map) = g.edge_subgraph(|e| e.index() != 1);
        assert_eq!(h.n(), 4);
        assert_eq!(h.m(), 2);
        assert_eq!(map.len(), 2);
        assert!(h.has_edge(NodeId::new(0), NodeId::new(1)));
        assert!(!h.has_edge(NodeId::new(1), NodeId::new(2)));
    }

    #[test]
    fn induced_subgraph_renumbers() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
        let (h, orig) = g.induced_subgraph(|v| v.index() % 2 == 0);
        assert_eq!(h.n(), 3);
        assert_eq!(
            orig.iter().map(|v| v.index()).collect::<Vec<_>>(),
            vec![0, 2, 4]
        );
        // Only edge among {0,2,4} is (4,0).
        assert_eq!(h.m(), 1);
    }

    #[test]
    fn id_display_and_debug() {
        assert_eq!(format!("{}", NodeId::new(7)), "7");
        assert_eq!(format!("{:?}", NodeId::new(7)), "n7");
        assert_eq!(format!("{:?}", EdgeId::new(3)), "e3");
        assert_eq!(NodeId::from(9u32).raw(), 9);
        assert_eq!(EdgeId::from(9u32).raw(), 9);
    }

    #[test]
    fn debug_graph_nonempty() {
        let g = Graph::empty(2);
        let s = format!("{g:?}");
        assert!(s.contains("Graph"));
    }
}
