//! Plain-text edge-list serialization.
//!
//! Format: first line `n m`, then one `u v` pair per line. Lines starting
//! with `#` are comments.

use std::fmt::Write as _;
use std::str::FromStr;

use crate::{Graph, GraphError};

/// Error parsing an edge-list document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseGraphError {
    /// The header line was missing or malformed.
    BadHeader,
    /// An edge line did not contain two integers.
    BadEdgeLine {
        /// 1-based line number.
        line: usize,
    },
    /// The edges were structurally invalid.
    Graph(GraphError),
    /// Fewer edge lines than the header promised.
    MissingEdges {
        /// Number promised by the header.
        expected: usize,
        /// Number actually present.
        found: usize,
    },
}

impl std::fmt::Display for ParseGraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseGraphError::BadHeader => write!(f, "missing or malformed `n m` header"),
            ParseGraphError::BadEdgeLine { line } => write!(f, "malformed edge on line {line}"),
            ParseGraphError::Graph(e) => write!(f, "invalid edge: {e}"),
            ParseGraphError::MissingEdges { expected, found } => {
                write!(f, "expected {expected} edges, found {found}")
            }
        }
    }
}

impl std::error::Error for ParseGraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseGraphError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for ParseGraphError {
    fn from(e: GraphError) -> Self {
        ParseGraphError::Graph(e)
    }
}

/// Serializes `g` as an edge-list document.
pub fn to_edge_list(g: &Graph) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{} {}", g.n(), g.m());
    for (u, v) in g.edges() {
        let _ = writeln!(s, "{} {}", u.index(), v.index());
    }
    s
}

/// Parses an edge-list document produced by [`to_edge_list`] (or by hand).
///
/// # Errors
///
/// Returns [`ParseGraphError`] on malformed input.
pub fn from_edge_list(text: &str) -> Result<Graph, ParseGraphError> {
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'));
    let (_, header) = lines.next().ok_or(ParseGraphError::BadHeader)?;
    let mut it = header.split_whitespace().map(usize::from_str);
    let n = it
        .next()
        .and_then(Result::ok)
        .ok_or(ParseGraphError::BadHeader)?;
    let m = it
        .next()
        .and_then(Result::ok)
        .ok_or(ParseGraphError::BadHeader)?;
    let mut b = crate::GraphBuilder::new(n);
    let mut found = 0usize;
    for (lineno, l) in lines {
        let mut it = l.split_whitespace().map(usize::from_str);
        let u = it
            .next()
            .and_then(Result::ok)
            .ok_or(ParseGraphError::BadEdgeLine { line: lineno })?;
        let v = it
            .next()
            .and_then(Result::ok)
            .ok_or(ParseGraphError::BadEdgeLine { line: lineno })?;
        b.add_edge(u, v)?;
        found += 1;
    }
    if found < m {
        return Err(ParseGraphError::MissingEdges { expected: m, found });
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (3, 4)]).unwrap();
        let text = to_edge_list(&g);
        let h = from_edge_list(&text).unwrap();
        assert_eq!(g, h);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let g = from_edge_list("# a comment\n\n3 2\n0 1\n# another\n1 2\n").unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn bad_header() {
        assert_eq!(from_edge_list(""), Err(ParseGraphError::BadHeader));
        assert_eq!(from_edge_list("x y\n"), Err(ParseGraphError::BadHeader));
    }

    #[test]
    fn bad_edge_line() {
        let e = from_edge_list("2 1\n0 x\n").unwrap_err();
        assert_eq!(e, ParseGraphError::BadEdgeLine { line: 2 });
    }

    #[test]
    fn missing_edges() {
        let e = from_edge_list("3 2\n0 1\n").unwrap_err();
        assert_eq!(
            e,
            ParseGraphError::MissingEdges {
                expected: 2,
                found: 1
            }
        );
    }

    #[test]
    fn invalid_edge_propagates() {
        let e = from_edge_list("2 1\n0 5\n").unwrap_err();
        assert!(matches!(e, ParseGraphError::Graph(_)));
        assert!(e.to_string().contains("invalid edge"));
    }
}
