//! Graph substrate for the `planartest` workspace.
//!
//! This crate provides everything the distributed planarity tester needs
//! from "classic" graph land:
//!
//! * [`Graph`] — a compact, immutable, undirected simple graph with stable
//!   node and edge identifiers ([`NodeId`], [`EdgeId`]).
//! * [`GraphBuilder`] — validated construction (rejects self-loops,
//!   de-duplicates parallel edges).
//! * [`generators`] — graph families used by the paper's experiments, most
//!   of them *certified*: planar families carry a proof-by-construction of
//!   planarity, non-planar families carry a lower bound on their distance
//!   to planarity (see [`generators::Certified`]).
//! * [`algo`] — BFS/DFS, connected & biconnected components, union-find,
//!   bipartiteness, girth, degeneracy/arboricity bounds.
//! * [`fingerprint`] — stable 128-bit content digests
//!   ([`Graph::fingerprint`]) keying the query service's graph registry
//!   and result cache.
//! * [`generators::spec`] — textual generator specs
//!   (`"tri_grid(24,24)"`), the service's second ingest route.
//! * [`disk`] — a relocatable on-disk CSR format with a zero-copy
//!   memory-mapped loader and a streaming two-pass counting-sort
//!   builder, so graphs with `n ≫ 10^6` build and query out-of-core.
//!
//! # Example
//!
//! ```
//! use planartest_graph::{Graph, NodeId};
//! use planartest_graph::algo::bfs::BfsTree;
//!
//! let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])?;
//! assert_eq!(g.n(), 4);
//! assert_eq!(g.m(), 4);
//! let bfs = BfsTree::build(&g, NodeId::new(0));
//! assert_eq!(bfs.level(NodeId::new(2)), Some(2));
//! # Ok::<(), planartest_graph::GraphError>(())
//! ```

#![warn(missing_docs)]

pub mod algo;
pub mod disk;
pub mod fingerprint;
pub mod generators;
mod graph;
pub mod io;

pub use crate::graph::{EdgeId, Graph, GraphBuilder, GraphError, NodeId};
