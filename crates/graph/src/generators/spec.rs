//! Textual generator specs: `"tri_grid(24,24)"` → a [`Certified`] graph.
//!
//! The query service ingests graphs either as raw edge lists
//! ([`crate::io`]) or as *generator specs* — compact strings naming a
//! family from the certified corpus plus its parameters. A spec is
//!
//! ```text
//! name                     e.g.  hypercube(7)
//! name(arg, arg, ...)      e.g.  random_planar(400, 0.7, seed=3)
//! ```
//!
//! with positional numeric arguments per family and an optional trailing
//! `seed=K` for the randomized families (default seed 0).
//!
//! **Determinism contract:** parsing the same spec string always yields
//! the same graph, bit for bit — randomized families draw from
//! `StdRng::seed_from_u64(seed)` and nothing else — so a spec is as good
//! a cache identity as the edge list it expands to. The service registry
//! still fingerprints the *expanded* graph, making the two ingest routes
//! collide when they describe the same graph.

use std::fmt;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::generators::{euler_excess, nonplanar, planar, Certified, PlanarityStatus};

/// Error parsing or instantiating a generator spec.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The spec was not of the form `name` or `name(args)`.
    Malformed,
    /// The family name is not in the corpus.
    UnknownFamily {
        /// The name that failed to resolve.
        name: String,
    },
    /// Wrong number of positional arguments for the family.
    WrongArity {
        /// The family name.
        name: &'static str,
        /// Arguments the family takes (for the error message).
        expected: &'static str,
        /// Number of positional arguments found.
        found: usize,
    },
    /// An argument failed to parse as a number.
    BadArgument {
        /// 1-based position of the offending argument.
        position: usize,
    },
    /// The family's own validation rejected the parameters (the panic
    /// message of the underlying generator, caught at parse time).
    InvalidParameters {
        /// The family name.
        name: &'static str,
        /// What the family requires.
        reason: &'static str,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Malformed => f.write_str("spec must be `name` or `name(args)`"),
            SpecError::UnknownFamily { name } => write!(f, "unknown generator family `{name}`"),
            SpecError::WrongArity {
                name,
                expected,
                found,
            } => write!(f, "`{name}` takes ({expected}), got {found} argument(s)"),
            SpecError::BadArgument { position } => {
                write!(f, "argument {position} is not a number")
            }
            SpecError::InvalidParameters { name, reason } => {
                write!(f, "invalid parameters for `{name}`: {reason}")
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// One corpus family: its spec shape and what the construction certifies.
///
/// [`families`] lists these for documentation, CLI discovery and the
/// README corpus table.
#[derive(Debug, Clone, Copy)]
pub struct FamilyInfo {
    /// Spec name.
    pub name: &'static str,
    /// Positional signature, e.g. `"n, keep"`.
    pub args: &'static str,
    /// Whether the family accepts a `seed=` argument (randomized).
    pub randomized: bool,
    /// `true` planar-by-construction, `false` non-planar corpus.
    pub planar: bool,
    /// Where the certified far-fraction (or planarity) comes from.
    pub certification: &'static str,
}

/// The full spec-addressable corpus.
#[must_use]
pub fn families() -> &'static [FamilyInfo] {
    const FAMILIES: &[FamilyInfo] = &[
        FamilyInfo {
            name: "path",
            args: "n",
            randomized: false,
            planar: true,
            certification: "planar by construction (tree)",
        },
        FamilyInfo {
            name: "cycle",
            args: "n",
            randomized: false,
            planar: true,
            certification: "planar by construction (outerplanar)",
        },
        FamilyInfo {
            name: "star",
            args: "n",
            randomized: false,
            planar: true,
            certification: "planar by construction (tree)",
        },
        FamilyInfo {
            name: "grid",
            args: "rows, cols",
            randomized: false,
            planar: true,
            certification: "planar by construction (grid drawing)",
        },
        FamilyInfo {
            name: "tri_grid",
            args: "rows, cols",
            randomized: false,
            planar: true,
            certification: "planar by construction (one diagonal per cell)",
        },
        FamilyInfo {
            name: "random_tree",
            args: "n",
            randomized: true,
            planar: true,
            certification: "planar by construction (tree)",
        },
        FamilyInfo {
            name: "apollonian",
            args: "n",
            randomized: true,
            planar: true,
            certification: "planar by construction (stacked triangulation)",
        },
        FamilyInfo {
            name: "random_planar",
            args: "n, keep",
            randomized: true,
            planar: true,
            certification: "planar by construction (subgraph of apollonian)",
        },
        FamilyInfo {
            name: "outerplanar",
            args: "n",
            randomized: true,
            planar: true,
            certification: "planar by construction (triangulated polygon)",
        },
        FamilyInfo {
            name: "road_network",
            args: "rows, cols",
            randomized: true,
            planar: true,
            certification: "planar by construction (grid + safe diagonals)",
        },
        FamilyInfo {
            name: "complete",
            args: "n",
            randomized: false,
            planar: false,
            certification: "Euler excess m − (3n − 6)",
        },
        FamilyInfo {
            name: "complete_bipartite",
            args: "a, b",
            randomized: false,
            planar: false,
            certification: "Euler excess (Unknown when it vanishes, e.g. K3,3)",
        },
        FamilyInfo {
            name: "k5_chain",
            args: "tiles",
            randomized: false,
            planar: false,
            certification: "packing bound: one removal per disjoint K5 tile",
        },
        FamilyInfo {
            name: "gnp",
            args: "n, p",
            randomized: true,
            planar: false,
            certification: "Euler excess (vanishes for sparse p)",
        },
        FamilyInfo {
            name: "near_regular",
            args: "n, d",
            randomized: true,
            planar: false,
            certification: "Euler excess (constant fraction for d ≥ 7)",
        },
        FamilyInfo {
            name: "planar_plus_chords",
            args: "n, k",
            randomized: true,
            planar: false,
            certification: "exact: k chords over a maximal planar base",
        },
        FamilyInfo {
            name: "torus",
            args: "rows, cols",
            randomized: false,
            planar: false,
            certification: "none (non-planar but Unknown distance)",
        },
        FamilyInfo {
            name: "hypercube",
            args: "d",
            randomized: false,
            planar: false,
            certification: "Euler excess (positive for d ≥ 7)",
        },
        FamilyInfo {
            name: "social_overlay",
            args: "n, extra_per_node",
            randomized: true,
            planar: false,
            certification: "Euler excess (grows with the overlay density)",
        },
    ];
    FAMILIES
}

/// One parsed argument: every number is carried as `f64` and narrowed
/// per family (usize parameters must be non-negative integers).
fn parse_args(inner: &str) -> Result<(Vec<f64>, u64), SpecError> {
    let mut positional = Vec::new();
    let mut seed = 0u64;
    if inner.trim().is_empty() {
        return Ok((positional, seed));
    }
    for (i, raw) in inner.split(',').enumerate() {
        let raw = raw.trim();
        if let Some(rest) = raw.strip_prefix("seed") {
            let rest = rest.trim_start();
            if let Some(v) = rest.strip_prefix('=') {
                seed = v
                    .trim()
                    .parse::<u64>()
                    .map_err(|_| SpecError::BadArgument { position: i + 1 })?;
                continue;
            }
        }
        positional.push(
            raw.parse::<f64>()
                .map_err(|_| SpecError::BadArgument { position: i + 1 })?,
        );
    }
    Ok((positional, seed))
}

fn as_usize(x: f64, position: usize) -> Result<usize, SpecError> {
    if x.fract() == 0.0 && x >= 0.0 && x <= usize::MAX as f64 {
        Ok(x as usize)
    } else {
        Err(SpecError::BadArgument { position })
    }
}

/// Validates family preconditions up front so [`parse`] returns errors
/// instead of panicking inside the generator.
fn require(ok: bool, name: &'static str, reason: &'static str) -> Result<(), SpecError> {
    if ok {
        Ok(())
    } else {
        Err(SpecError::InvalidParameters { name, reason })
    }
}

/// Splits a spec into `(family name, positional args, seed)` — the
/// shared grammar behind [`parse`] and [`streamable`].
fn split_spec(spec: &str) -> Result<(&str, Vec<f64>, u64), SpecError> {
    let spec = spec.trim();
    let (name, inner) = match spec.find('(') {
        Some(open) => {
            let close = spec.rfind(')').ok_or(SpecError::Malformed)?;
            if close != spec.len() - 1 || close < open {
                return Err(SpecError::Malformed);
            }
            (spec[..open].trim(), &spec[open + 1..close])
        }
        None => (spec, ""),
    };
    if name.is_empty() || !name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_') {
        return Err(SpecError::Malformed);
    }
    let (args, seed) = parse_args(inner)?;
    Ok((name, args, seed))
}

/// Parses and instantiates a generator spec (see the [module docs](self)
/// for the grammar and the determinism contract).
///
/// # Errors
///
/// Returns a [`SpecError`] on unknown families, malformed or invalid
/// arguments; never panics on untrusted input.
///
/// # Example
///
/// ```
/// use planartest_graph::generators::spec;
///
/// let c = spec::parse("k5_chain(4)").unwrap();
/// assert_eq!(c.graph.n(), 20);
/// assert!(c.far_fraction() > 0.0);
/// // Same spec, same graph — specs are cache identities.
/// assert_eq!(
///     spec::parse("gnp(50, 0.1, seed=7)").unwrap().graph,
///     spec::parse("gnp(50, 0.1, seed=7)").unwrap().graph,
/// );
/// ```
pub fn parse(spec: &str) -> Result<Certified, SpecError> {
    let (name, args, seed) = split_spec(spec)?;
    let mut rng = StdRng::seed_from_u64(seed);

    let arity = |expected: &'static str, want: usize| -> Result<(), SpecError> {
        if args.len() == want {
            Ok(())
        } else {
            Err(SpecError::WrongArity {
                name: families()
                    .iter()
                    .map(|f| f.name)
                    .find(|&n| n == name)
                    .unwrap_or("?"),
                expected,
                found: args.len(),
            })
        }
    };
    let u = |i: usize| as_usize(args[i], i + 1);

    match name {
        "path" => {
            arity("n", 1)?;
            let n = u(0)?;
            require(n > 0, "path", "n > 0")?;
            Ok(planar::path(n))
        }
        "cycle" => {
            arity("n", 1)?;
            let n = u(0)?;
            require(n >= 3, "cycle", "n >= 3")?;
            Ok(planar::cycle(n))
        }
        "star" => {
            arity("n", 1)?;
            let n = u(0)?;
            require(n > 0, "star", "n > 0")?;
            Ok(planar::star(n))
        }
        "grid" => {
            arity("rows, cols", 2)?;
            let (r, c) = (u(0)?, u(1)?);
            require(r > 0 && c > 0, "grid", "positive dimensions")?;
            Ok(planar::grid(r, c))
        }
        "tri_grid" => {
            arity("rows, cols", 2)?;
            let (r, c) = (u(0)?, u(1)?);
            require(r > 0 && c > 0, "tri_grid", "positive dimensions")?;
            Ok(planar::triangulated_grid(r, c))
        }
        "random_tree" => {
            arity("n", 1)?;
            let n = u(0)?;
            require(n > 0, "random_tree", "n > 0")?;
            Ok(planar::random_tree(n, &mut rng))
        }
        "apollonian" => {
            arity("n", 1)?;
            let n = u(0)?;
            require(n >= 3, "apollonian", "n >= 3")?;
            Ok(planar::apollonian(n, &mut rng))
        }
        "random_planar" => {
            arity("n, keep", 2)?;
            let n = u(0)?;
            let keep = args[1];
            require(n >= 3, "random_planar", "n >= 3")?;
            require(
                (0.0..=1.0).contains(&keep),
                "random_planar",
                "keep in [0, 1]",
            )?;
            Ok(planar::random_planar(n, keep, &mut rng))
        }
        "outerplanar" => {
            arity("n", 1)?;
            let n = u(0)?;
            require(n >= 3, "outerplanar", "n >= 3")?;
            Ok(planar::maximal_outerplanar(n, &mut rng))
        }
        "road_network" => {
            arity("rows, cols", 2)?;
            let (r, c) = (u(0)?, u(1)?);
            require(r > 1 && c > 1, "road_network", "at least a 2x2 grid")?;
            Ok(planar::road_network(r, c, &mut rng))
        }
        "complete" => {
            arity("n", 1)?;
            let n = u(0)?;
            require(n > 0, "complete", "n > 0")?;
            Ok(nonplanar::complete(n))
        }
        "complete_bipartite" => {
            arity("a, b", 2)?;
            let (a, b) = (u(0)?, u(1)?);
            require(a > 0 && b > 0, "complete_bipartite", "non-empty sides")?;
            Ok(nonplanar::complete_bipartite(a, b))
        }
        "k5_chain" => {
            arity("tiles", 1)?;
            let t = u(0)?;
            require(t > 0, "k5_chain", "at least one tile")?;
            Ok(nonplanar::k5_chain(t))
        }
        "gnp" => {
            arity("n, p", 2)?;
            let n = u(0)?;
            let p = args[1];
            require((0.0..=1.0).contains(&p), "gnp", "p in [0, 1]")?;
            Ok(nonplanar::gnp(n, p, &mut rng))
        }
        "near_regular" => {
            arity("n, d", 2)?;
            let (n, d) = (u(0)?, u(1)?);
            require(
                (n * d) % 2 == 0 && d < n,
                "near_regular",
                "n*d even and d < n",
            )?;
            Ok(nonplanar::near_regular(n, d, &mut rng))
        }
        "planar_plus_chords" => {
            arity("n, k", 2)?;
            let (n, k) = (u(0)?, u(1)?);
            require(n >= 5, "planar_plus_chords", "n >= 5")?;
            require(
                k <= n * (n - 1) / 2 - (3 * n - 6),
                "planar_plus_chords",
                "k at most the number of non-edges",
            )?;
            Ok(nonplanar::planar_plus_chords(n, k, &mut rng))
        }
        "torus" => {
            arity("rows, cols", 2)?;
            let (r, c) = (u(0)?, u(1)?);
            require(r >= 3 && c >= 3, "torus", "both dims >= 3")?;
            Ok(nonplanar::torus(r, c))
        }
        "hypercube" => {
            arity("d", 1)?;
            let d = u(0)?;
            require(d > 0 && d <= 20, "hypercube", "1 <= d <= 20")?;
            Ok(nonplanar::hypercube(d as u32))
        }
        "social_overlay" => {
            arity("n, extra_per_node", 2)?;
            let n = u(0)?;
            let x = args[1];
            require(n >= 9, "social_overlay", "n >= 9")?;
            require(x >= 0.0, "social_overlay", "non-negative overlay density")?;
            Ok(nonplanar::social_overlay(n, x, &mut rng))
        }
        other => Err(SpecError::UnknownFamily {
            name: other.to_string(),
        }),
    }
}

/// One family of [`StreamableSpec`]: enough parameters to regenerate
/// the edge set on demand, any number of times.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StreamFamily {
    Path {
        n: usize,
    },
    Cycle {
        n: usize,
    },
    Star {
        n: usize,
    },
    Grid {
        rows: usize,
        cols: usize,
        diagonals: bool,
    },
    Complete {
        n: usize,
    },
    CompleteBipartite {
        a: usize,
        b: usize,
    },
    K5Chain {
        tiles: usize,
    },
    Torus {
        rows: usize,
        cols: usize,
    },
    Hypercube {
        d: u32,
    },
}

/// A spec whose edges can be *streamed* — regenerated edge by edge, any
/// number of times, without materializing the graph.
///
/// This is the deterministic closed-form subset of the corpus (paths,
/// cycles, stars, grids, complete (bipartite) graphs, K5 chains, tori,
/// hypercubes): exactly the families whose edge set is a function of
/// the parameters alone, so `n ≫ 10^6` instances can be ingested
/// straight to disk by [`crate::disk::stream_to_disk`] in `O(n)` RAM.
/// The streamed edge set is identical to what [`parse`] materializes,
/// so fingerprints — and therefore cache identities — collide exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamableSpec {
    n: usize,
    m: usize,
    status: PlanarityStatus,
    family: StreamFamily,
}

impl StreamableSpec {
    /// Number of nodes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of distinct edges (known in closed form).
    #[must_use]
    pub fn m(&self) -> usize {
        self.m
    }

    /// The same certified planarity status [`parse`] would attach.
    #[must_use]
    pub fn status(&self) -> PlanarityStatus {
        self.status
    }

    /// Streams every edge once through `emit`, stopping early on error.
    ///
    /// # Errors
    ///
    /// Only errors returned by `emit` itself.
    pub fn for_each_edge<E>(
        &self,
        emit: &mut dyn FnMut(usize, usize) -> Result<(), E>,
    ) -> Result<(), E> {
        match self.family {
            StreamFamily::Path { n } => {
                for i in 0..n.saturating_sub(1) {
                    emit(i, i + 1)?;
                }
            }
            StreamFamily::Cycle { n } => {
                for i in 0..n {
                    emit(i, (i + 1) % n)?;
                }
            }
            StreamFamily::Star { n } => {
                for i in 1..n {
                    emit(0, i)?;
                }
            }
            StreamFamily::Grid {
                rows,
                cols,
                diagonals,
            } => {
                let idx = |r: usize, c: usize| r * cols + c;
                for r in 0..rows {
                    for c in 0..cols {
                        if c + 1 < cols {
                            emit(idx(r, c), idx(r, c + 1))?;
                        }
                        if r + 1 < rows {
                            emit(idx(r, c), idx(r + 1, c))?;
                        }
                        if diagonals && r + 1 < rows && c + 1 < cols {
                            emit(idx(r, c), idx(r + 1, c + 1))?;
                        }
                    }
                }
            }
            StreamFamily::Complete { n } => {
                for i in 0..n {
                    for j in i + 1..n {
                        emit(i, j)?;
                    }
                }
            }
            StreamFamily::CompleteBipartite { a, b } => {
                for i in 0..a {
                    for j in 0..b {
                        emit(i, a + j)?;
                    }
                }
            }
            StreamFamily::K5Chain { tiles } => {
                for t in 0..tiles {
                    let base = 5 * t;
                    for i in 0..5 {
                        for j in i + 1..5 {
                            emit(base + i, base + j)?;
                        }
                    }
                    if t + 1 < tiles {
                        emit(base + 4, base + 5)?;
                    }
                }
            }
            StreamFamily::Torus { rows, cols } => {
                let idx = |r: usize, c: usize| r * cols + c;
                for r in 0..rows {
                    for c in 0..cols {
                        emit(idx(r, c), idx(r, (c + 1) % cols))?;
                        emit(idx(r, c), idx((r + 1) % rows, c))?;
                    }
                }
            }
            StreamFamily::Hypercube { d } => {
                let n = 1usize << d;
                for v in 0..n {
                    for bit in 0..d {
                        let w = v ^ (1usize << bit);
                        if v < w {
                            emit(v, w)?;
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// The status the Euler-excess families certify (mirrors the
/// generators' `with_euler_bound`).
fn euler_status(n: usize, m: usize) -> PlanarityStatus {
    let excess = euler_excess(n, m);
    if excess > 0 {
        PlanarityStatus::FarFromPlanar {
            min_removals: excess,
        }
    } else {
        PlanarityStatus::Unknown
    }
}

/// Parses a spec into its streamable form, if the family supports it.
///
/// `Ok(None)` means the spec is valid but belongs to a randomized or
/// otherwise non-closed-form family — callers fall back to [`parse`]
/// and materialize. The parameters are validated exactly as [`parse`]
/// validates them, so a `Some` here never fails later.
///
/// # Errors
///
/// The same [`SpecError`]s as [`parse`] for the streamable families.
pub fn streamable(spec: &str) -> Result<Option<StreamableSpec>, SpecError> {
    let (name, args, _seed) = split_spec(spec)?;
    let arity = |expected: &'static str, want: usize| -> Result<(), SpecError> {
        if args.len() == want {
            Ok(())
        } else {
            Err(SpecError::WrongArity {
                name: families()
                    .iter()
                    .map(|f| f.name)
                    .find(|&n| n == name)
                    .unwrap_or("?"),
                expected,
                found: args.len(),
            })
        }
    };
    let u = |i: usize| as_usize(args[i], i + 1);
    let built = match name {
        "path" => {
            arity("n", 1)?;
            let n = u(0)?;
            require(n > 0, "path", "n > 0")?;
            StreamableSpec {
                n,
                m: n - 1,
                status: PlanarityStatus::Planar,
                family: StreamFamily::Path { n },
            }
        }
        "cycle" => {
            arity("n", 1)?;
            let n = u(0)?;
            require(n >= 3, "cycle", "n >= 3")?;
            StreamableSpec {
                n,
                m: n,
                status: PlanarityStatus::Planar,
                family: StreamFamily::Cycle { n },
            }
        }
        "star" => {
            arity("n", 1)?;
            let n = u(0)?;
            require(n > 0, "star", "n > 0")?;
            StreamableSpec {
                n,
                m: n - 1,
                status: PlanarityStatus::Planar,
                family: StreamFamily::Star { n },
            }
        }
        "grid" | "tri_grid" => {
            arity("rows, cols", 2)?;
            let (r, c) = (u(0)?, u(1)?);
            require(
                r > 0 && c > 0,
                if name == "grid" { "grid" } else { "tri_grid" },
                "positive dimensions",
            )?;
            let diagonals = name == "tri_grid";
            let m = r * (c - 1) + c * (r - 1) + if diagonals { (r - 1) * (c - 1) } else { 0 };
            StreamableSpec {
                n: r * c,
                m,
                status: PlanarityStatus::Planar,
                family: StreamFamily::Grid {
                    rows: r,
                    cols: c,
                    diagonals,
                },
            }
        }
        "complete" => {
            arity("n", 1)?;
            let n = u(0)?;
            require(n > 0, "complete", "n > 0")?;
            let m = n * (n - 1) / 2;
            StreamableSpec {
                n,
                m,
                status: if n < 5 {
                    PlanarityStatus::Planar
                } else {
                    euler_status(n, m)
                },
                family: StreamFamily::Complete { n },
            }
        }
        "complete_bipartite" => {
            arity("a, b", 2)?;
            let (a, b) = (u(0)?, u(1)?);
            require(a > 0 && b > 0, "complete_bipartite", "non-empty sides")?;
            StreamableSpec {
                n: a + b,
                m: a * b,
                status: if a.min(b) < 3 {
                    PlanarityStatus::Planar
                } else {
                    euler_status(a + b, a * b)
                },
                family: StreamFamily::CompleteBipartite { a, b },
            }
        }
        "k5_chain" => {
            arity("tiles", 1)?;
            let t = u(0)?;
            require(t > 0, "k5_chain", "at least one tile")?;
            StreamableSpec {
                n: 5 * t,
                m: 10 * t + (t - 1),
                status: PlanarityStatus::FarFromPlanar { min_removals: t },
                family: StreamFamily::K5Chain { tiles: t },
            }
        }
        "torus" => {
            arity("rows, cols", 2)?;
            let (r, c) = (u(0)?, u(1)?);
            require(r >= 3 && c >= 3, "torus", "both dims >= 3")?;
            StreamableSpec {
                n: r * c,
                m: 2 * r * c,
                status: PlanarityStatus::Unknown,
                family: StreamFamily::Torus { rows: r, cols: c },
            }
        }
        "hypercube" => {
            arity("d", 1)?;
            let d = u(0)?;
            require(d > 0 && d <= 20, "hypercube", "1 <= d <= 20")?;
            let n = 1usize << d;
            let m = d * (n / 2);
            StreamableSpec {
                n,
                m,
                status: euler_status(n, m),
                family: StreamFamily::Hypercube { d: d as u32 },
            }
        }
        // Known-but-randomized (or otherwise non-closed-form) families
        // decline to stream; the caller materializes via [`parse`],
        // which performs the full argument validation.
        other if families().iter().any(|f| f.name == other) => return Ok(None),
        other => {
            return Err(SpecError::UnknownFamily {
                name: other.to_string(),
            })
        }
    };
    Ok(Some(built))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_family_parses_with_a_small_instance() {
        let samples = [
            "path(8)",
            "cycle(8)",
            "star(8)",
            "grid(3,4)",
            "tri_grid(3, 4)",
            "random_tree(16, seed=1)",
            "apollonian(12)",
            "random_planar(20, 0.7, seed=2)",
            "outerplanar(10)",
            "road_network(4, 4, seed=3)",
            "complete(6)",
            "complete_bipartite(3,3)",
            "k5_chain(3)",
            "gnp(30, 0.2, seed=4)",
            "near_regular(20, 4, seed=5)",
            "planar_plus_chords(12, 5, seed=6)",
            "torus(3,4)",
            "hypercube(4)",
            "social_overlay(16, 1.5, seed=7)",
        ];
        assert_eq!(samples.len(), families().len());
        for s in samples {
            let c = parse(s).unwrap_or_else(|e| panic!("{s}: {e}"));
            assert!(c.graph.n() > 0, "{s}");
        }
    }

    #[test]
    fn deterministic_per_spec() {
        for s in ["gnp(40, 0.15, seed=9)", "apollonian(30, seed=2)"] {
            assert_eq!(parse(s).unwrap().graph, parse(s).unwrap().graph, "{s}");
        }
        // Different seeds give different graphs (with overwhelming
        // probability for these sizes — fixed seeds keep it exact).
        assert_ne!(
            parse("gnp(40, 0.5, seed=1)").unwrap().graph,
            parse("gnp(40, 0.5, seed=2)").unwrap().graph,
        );
    }

    #[test]
    fn malformed_specs_error_not_panic() {
        assert_eq!(parse("").unwrap_err(), SpecError::Malformed);
        assert_eq!(parse("grid(3,4").unwrap_err(), SpecError::Malformed);
        assert_eq!(parse("gr id(3,4)").unwrap_err(), SpecError::Malformed);
        assert!(matches!(
            parse("nope(3)"),
            Err(SpecError::UnknownFamily { .. })
        ));
        assert!(matches!(parse("path()"), Err(SpecError::WrongArity { .. })));
        assert!(matches!(
            parse("path(2, 3)"),
            Err(SpecError::WrongArity { .. })
        ));
        assert_eq!(
            parse("path(x)").unwrap_err(),
            SpecError::BadArgument { position: 1 }
        );
        assert_eq!(
            parse("gnp(30, 0.2, seed=x)").unwrap_err(),
            SpecError::BadArgument { position: 3 }
        );
        assert!(matches!(
            parse("cycle(2)"),
            Err(SpecError::InvalidParameters { .. })
        ));
        assert!(matches!(
            parse("gnp(30, 1.5)"),
            Err(SpecError::InvalidParameters { .. })
        ));
        // Fractional where an integer is required.
        assert_eq!(
            parse("path(2.5)").unwrap_err(),
            SpecError::BadArgument { position: 1 }
        );
        // Error display is human-usable.
        assert!(parse("path()").unwrap_err().to_string().contains("path"));
    }

    #[test]
    fn family_table_is_consistent() {
        for fam in families() {
            assert!(!fam.name.is_empty());
            assert!(!fam.args.is_empty());
            assert!(!fam.certification.is_empty());
        }
    }
}
