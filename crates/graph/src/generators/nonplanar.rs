//! Non-planar graph families with certified distance-to-planarity bounds
//! where the construction provides one.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::generators::{euler_excess, Certified, PlanarityStatus};
use crate::{Graph, GraphBuilder};

fn with_euler_bound(graph: Graph, name: String) -> Certified {
    let excess = euler_excess(graph.n(), graph.m());
    let status = if excess > 0 {
        PlanarityStatus::FarFromPlanar {
            min_removals: excess,
        }
    } else {
        PlanarityStatus::Unknown
    };
    Certified {
        graph,
        status,
        name,
    }
}

/// Complete graph `K_n`.
///
/// Certified far via the Euler excess `m − (3n − 6)` for `n ≥ 5`
/// (downgraded to [`PlanarityStatus::Planar`] below `K5`).
/// Deterministic: fully determined by `n`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn complete(n: usize) -> Certified {
    assert!(n > 0, "complete requires n > 0");
    let g = Graph::from_edges(n, (0..n).flat_map(|i| (i + 1..n).map(move |j| (i, j))))
        .expect("complete edges valid");
    let mut c = with_euler_bound(g, format!("complete(n={n})"));
    if n < 5 {
        c.status = PlanarityStatus::Planar;
    }
    c
}

/// Complete bipartite graph `K_{a,b}`.
///
/// Certified far via the Euler excess when positive; `K3,3`-like cases
/// where the excess vanishes stay [`PlanarityStatus::Unknown`] (a
/// one-sided tester may accept them). Deterministic: fully determined
/// by `a` and `b`.
///
/// # Panics
///
/// Panics if `a == 0` or `b == 0`.
pub fn complete_bipartite(a: usize, b: usize) -> Certified {
    assert!(a > 0 && b > 0, "bipartite sides must be non-empty");
    let g = Graph::from_edges(a + b, (0..a).flat_map(|i| (0..b).map(move |j| (i, a + j))))
        .expect("bipartite edges valid");
    let planar = a.min(b) < 3;
    let mut c = with_euler_bound(g, format!("k{a}{b}"));
    if planar {
        c.status = PlanarityStatus::Planar;
    }
    c
}

/// A chain of `tiles` vertex-disjoint `K5`s, consecutive tiles linked by a
/// single edge (so the graph is connected).
///
/// Since the `K5`s are vertex-disjoint and each needs at least one edge
/// removed, the graph is at least `tiles / m`-far from planar — a
/// *packing* certificate, sharper than the Euler bound here.
/// Deterministic: fully determined by `tiles`.
///
/// # Panics
///
/// Panics if `tiles == 0`.
pub fn k5_chain(tiles: usize) -> Certified {
    assert!(tiles > 0, "need at least one tile");
    let n = 5 * tiles;
    let mut b = GraphBuilder::new(n);
    for t in 0..tiles {
        let base = 5 * t;
        for i in 0..5 {
            for j in i + 1..5 {
                b.add_edge(base + i, base + j).expect("in range");
            }
        }
        if t + 1 < tiles {
            b.add_edge(base + 4, base + 5).expect("in range");
        }
    }
    let graph = b.build();
    Certified {
        graph,
        status: PlanarityStatus::FarFromPlanar {
            min_removals: tiles,
        },
        name: format!("k5_chain(tiles={tiles})"),
    }
}

/// Erdős–Rényi `G(n, p)`.
///
/// Uses geometric skipping so generation is `O(n + m)` in expectation.
/// Certified far via the Euler excess when it is positive (dense `p`);
/// sparse draws stay [`PlanarityStatus::Unknown`]. Randomized:
/// deterministic given the seeded `rng`.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]`.
pub fn gnp<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Certified {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut b = GraphBuilder::new(n.max(1));
    if p > 0.0 && n >= 2 {
        if (1.0 - p).abs() < f64::EPSILON {
            for i in 0..n {
                for j in i + 1..n {
                    b.add_edge(i, j).expect("in range");
                }
            }
        } else {
            // Batagelj–Brandes geometric skipping over the lower triangle.
            let lq = (1.0 - p).ln();
            let mut v: usize = 1;
            let mut w: i64 = -1;
            while v < n {
                let r: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
                let skip = (r.ln() / lq).floor() as i64 + 1;
                w += skip;
                while v < n && w >= v as i64 {
                    w -= v as i64;
                    v += 1;
                }
                if v < n {
                    b.add_edge(v, w as usize).expect("in range");
                }
            }
        }
    }
    with_euler_bound(b.build(), format!("gnp(n={n},p={p:.4})"))
}

/// Approximately `d`-regular graph via the configuration model (self-loops
/// and duplicate pairings are dropped, so a few nodes may have degree
/// slightly below `d`).
///
/// For `d ≥ 7` the Euler bound certifies constant far-ness; sparser
/// degrees stay [`PlanarityStatus::Unknown`]. Randomized: deterministic
/// given the seeded `rng`.
///
/// # Panics
///
/// Panics if `n * d` is odd or `d >= n`.
pub fn near_regular<R: Rng + ?Sized>(n: usize, d: usize, rng: &mut R) -> Certified {
    assert!((n * d).is_multiple_of(2), "n*d must be even");
    assert!(d < n, "degree must be < n");
    let mut stubs: Vec<usize> = (0..n).flat_map(|v| std::iter::repeat_n(v, d)).collect();
    stubs.shuffle(rng);
    let mut b = GraphBuilder::new(n);
    for pair in stubs.chunks_exact(2) {
        if pair[0] != pair[1] {
            b.add_edge(pair[0], pair[1]).expect("in range");
        }
    }
    with_euler_bound(b.build(), format!("near_regular(n={n},d={d})"))
}

/// A maximal planar graph (Apollonian network) plus `k` uniformly random
/// chords among its non-edges.
///
/// Since the base already has `3n − 6` edges, the Euler formula forces at
/// least `k` removals: the result is exactly certified `k/(3n−6+k)`-far.
/// Randomized: deterministic given the seeded `rng` (both the base
/// triangulation and the chord choices draw from it).
///
/// # Panics
///
/// Panics if `n < 5` or there are not `k` non-edges to add.
pub fn planar_plus_chords<R: Rng + ?Sized>(n: usize, k: usize, rng: &mut R) -> Certified {
    assert!(n >= 5, "need n >= 5");
    let base = super::planar::apollonian(n, rng).graph;
    let max_extra = n * (n - 1) / 2 - base.m();
    assert!(
        k <= max_extra,
        "cannot add {k} chords, only {max_extra} non-edges"
    );
    let mut b = GraphBuilder::new(n);
    for (u, v) in base.edges() {
        b.add_edge(u.index(), v.index()).expect("in range");
    }
    let mut added = std::collections::HashSet::new();
    while added.len() < k {
        let u = rng.random_range(0..n);
        let v = rng.random_range(0..n);
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if base.has_edge(crate::NodeId::new(key.0), crate::NodeId::new(key.1)) {
            continue;
        }
        if added.insert(key) {
            b.add_edge(u, v).expect("in range");
        }
    }
    let graph = b.build();
    Certified {
        graph,
        status: PlanarityStatus::FarFromPlanar { min_removals: k },
        name: format!("planar_plus_chords(n={n},k={k})"),
    }
}

/// `rows × cols` torus grid (wrap-around in both dimensions): non-planar
/// for `rows, cols ≥ 3` but *not* certified far
/// ([`PlanarityStatus::Unknown`]) — a useful "non-planar but possibly
/// accepted" input for one-sided testers. Deterministic: fully
/// determined by the dimensions.
///
/// # Panics
///
/// Panics if either dimension is `< 3`.
pub fn torus(rows: usize, cols: usize) -> Certified {
    assert!(rows >= 3 && cols >= 3, "torus requires both dims >= 3");
    let idx = |r: usize, c: usize| r * cols + c;
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            b.add_edge(idx(r, c), idx(r, (c + 1) % cols))
                .expect("in range");
            b.add_edge(idx(r, c), idx((r + 1) % rows, c))
                .expect("in range");
        }
    }
    Certified {
        graph: b.build(),
        status: PlanarityStatus::Unknown,
        name: format!("torus({rows}x{cols})"),
    }
}

/// `d`-dimensional hypercube `Q_d` (`n = 2^d`); certified far via the
/// Euler excess for `d ≥ 7`, [`PlanarityStatus::Unknown`] below.
/// Deterministic: fully determined by `d`.
///
/// # Panics
///
/// Panics if `d == 0` or `d > 20`.
pub fn hypercube(d: u32) -> Certified {
    assert!(d > 0 && d <= 20, "dimension out of range");
    let n = 1usize << d;
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        for bit in 0..d {
            let w = v ^ (1usize << bit);
            if v < w {
                b.add_edge(v, w).expect("in range");
            }
        }
    }
    with_euler_bound(b.build(), format!("hypercube(d={d})"))
}

/// A "social overlay network": planar backbone (geometric-ish grid) plus
/// many random long-range friendships. Heavily non-planar; used by the
/// `social_overlay` example.
///
/// Certified far via the Euler excess when the overlay is dense enough
/// to push `m` past `3n − 6`; otherwise [`PlanarityStatus::Unknown`].
/// Randomized: deterministic given the seeded `rng`.
///
/// # Panics
///
/// Panics if `n < 9`.
pub fn social_overlay<R: Rng + ?Sized>(n: usize, extra_per_node: f64, rng: &mut R) -> Certified {
    assert!(n >= 9, "need n >= 9");
    let side = (n as f64).sqrt().ceil() as usize;
    let idx = |r: usize, c: usize| (r * side + c) % n;
    let mut b = GraphBuilder::new(n);
    for r in 0..side {
        for c in 0..side {
            if idx(r, c) >= n {
                continue;
            }
            if c + 1 < side {
                b.add_edge(idx(r, c), idx(r, c + 1)).expect("in range");
            }
            if r + 1 < side {
                b.add_edge(idx(r, c), idx(r + 1, c)).expect("in range");
            }
        }
    }
    let extras = (n as f64 * extra_per_node) as usize;
    for _ in 0..extras {
        let u = rng.random_range(0..n);
        let v = rng.random_range(0..n);
        if u != v {
            b.add_edge(u, v).expect("in range");
        }
    }
    with_euler_bound(
        b.build(),
        format!("social_overlay(n={n},x={extra_per_node})"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xFEED)
    }

    #[test]
    fn complete_sizes_and_status() {
        assert_eq!(complete(5).graph.m(), 10);
        assert!(matches!(
            complete(5).status,
            PlanarityStatus::FarFromPlanar { min_removals: 1 }
        ));
        assert!(complete(4).status.is_planar());
        assert!(complete(1).status.is_planar());
    }

    #[test]
    fn k33_status_unknown_by_euler() {
        // K3,3 is non-planar but Euler doesn't see it: m = 9 <= 3*6-6 = 12.
        let c = complete_bipartite(3, 3);
        assert_eq!(c.graph.m(), 9);
        assert_eq!(c.status, PlanarityStatus::Unknown);
        assert!(complete_bipartite(2, 7).status.is_planar());
    }

    #[test]
    fn k5_chain_certificate() {
        let c = k5_chain(10);
        assert_eq!(c.graph.n(), 50);
        assert_eq!(c.graph.m(), 10 * 10 + 9);
        assert!(matches!(
            c.status,
            PlanarityStatus::FarFromPlanar { min_removals: 10 }
        ));
        assert!(crate::algo::components::is_connected(&c.graph));
        assert!(c.far_fraction() > 0.08);
    }

    #[test]
    fn gnp_edge_count_concentrates() {
        let n = 2000;
        let p = 4.0 / n as f64;
        let c = gnp(n, p, &mut rng());
        let expected = p * (n * (n - 1) / 2) as f64;
        let m = c.graph.m() as f64;
        assert!(
            (m - expected).abs() < 0.25 * expected,
            "m={m}, expected={expected}"
        );
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(gnp(10, 0.0, &mut rng()).graph.m(), 0);
        assert_eq!(gnp(6, 1.0, &mut rng()).graph.m(), 15);
        assert_eq!(gnp(1, 0.5, &mut rng()).graph.m(), 0);
    }

    #[test]
    fn near_regular_degrees() {
        let c = near_regular(100, 8, &mut rng());
        let g = &c.graph;
        assert!(g.max_degree() <= 8);
        assert!(g.average_degree() > 7.0, "avg {}", g.average_degree());
        assert!(c.far_fraction() > 0.1);
    }

    #[test]
    fn planar_plus_chords_certificate() {
        let c = planar_plus_chords(100, 30, &mut rng());
        assert_eq!(c.graph.m(), 3 * 100 - 6 + 30);
        assert!(matches!(
            c.status,
            PlanarityStatus::FarFromPlanar { min_removals: 30 }
        ));
    }

    #[test]
    fn torus_uncertified() {
        let c = torus(4, 5);
        assert_eq!(c.graph.n(), 20);
        assert_eq!(c.graph.m(), 40);
        assert_eq!(c.status, PlanarityStatus::Unknown);
    }

    #[test]
    fn hypercube_sizes() {
        let c = hypercube(4);
        assert_eq!(c.graph.n(), 16);
        assert_eq!(c.graph.m(), 32);
        let c7 = hypercube(7);
        assert!(matches!(c7.status, PlanarityStatus::FarFromPlanar { .. }));
    }

    #[test]
    fn social_overlay_dense_is_far() {
        let c = social_overlay(400, 3.0, &mut rng());
        assert!(c.far_fraction() > 0.1, "far {}", c.far_fraction());
    }
}
