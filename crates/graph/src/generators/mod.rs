//! Graph generators for the paper's experiments.
//!
//! Most generators return a [`Certified`] graph: alongside the graph itself
//! they carry what is *known by construction* about its distance to
//! planarity. This is what lets soundness experiments (E1, E6) claim a
//! graph really is `ε`-far without solving the (hard) exact
//! distance-to-planarity problem:
//!
//! * planar families are planar by construction;
//! * dense families get the Euler bound `m − (3n − 6)` on the number of
//!   edges that must be removed;
//! * planted families (e.g. disjoint `K5` tiles) get a packing bound.

pub mod nonplanar;
pub mod planar;
pub mod spec;

use crate::Graph;

/// What is known, by construction, about a generated graph's distance to
/// planarity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlanarityStatus {
    /// The graph is planar by construction.
    Planar,
    /// At least `min_removals` edges must be removed to make it planar.
    FarFromPlanar {
        /// Lower bound on the edge-removal distance to planarity.
        min_removals: usize,
    },
    /// Non-planar (or unknown), with no useful distance bound — a
    /// one-sided tester is allowed to accept such graphs.
    Unknown,
}

impl PlanarityStatus {
    /// The certified `ε` such that the graph is `ε`-far from planarity
    /// (`0.0` when nothing is certified).
    pub fn far_fraction(&self, m: usize) -> f64 {
        match *self {
            PlanarityStatus::FarFromPlanar { min_removals } if m > 0 => {
                min_removals as f64 / m as f64
            }
            _ => 0.0,
        }
    }

    /// Whether the graph is certified planar.
    pub fn is_planar(&self) -> bool {
        matches!(self, PlanarityStatus::Planar)
    }
}

/// A generated graph together with its construction certificate.
#[derive(Debug, Clone)]
pub struct Certified {
    /// The graph itself.
    pub graph: Graph,
    /// What the construction guarantees about planarity.
    pub status: PlanarityStatus,
    /// Human-readable family name with parameters (for experiment tables).
    pub name: String,
}

impl Certified {
    /// Certified distance-to-planarity as a fraction of `m`.
    pub fn far_fraction(&self) -> f64 {
        self.status.far_fraction(self.graph.m())
    }
}

/// Euler-formula lower bound on edges to remove for planarity:
/// a planar simple graph on `n ≥ 3` nodes has at most `3n − 6` edges.
pub fn euler_excess(n: usize, m: usize) -> usize {
    if n < 3 {
        0
    } else {
        m.saturating_sub(3 * n - 6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euler_excess_basics() {
        assert_eq!(euler_excess(3, 3), 0);
        assert_eq!(euler_excess(5, 10), 10 - 9); // K5 is 1 over
        assert_eq!(euler_excess(6, 9), 0); // K3,3 passes Euler yet is non-planar
        assert_eq!(euler_excess(2, 1), 0);
        assert_eq!(euler_excess(0, 0), 0);
    }

    #[test]
    fn far_fraction() {
        let s = PlanarityStatus::FarFromPlanar { min_removals: 5 };
        assert!((s.far_fraction(50) - 0.1).abs() < 1e-12);
        assert_eq!(PlanarityStatus::Planar.far_fraction(50), 0.0);
        assert_eq!(s.far_fraction(0), 0.0);
        assert!(PlanarityStatus::Planar.is_planar());
        assert!(!s.is_planar());
    }
}
