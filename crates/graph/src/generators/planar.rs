//! Planar graph families (planar by construction).

use rand::Rng;

use crate::generators::{Certified, PlanarityStatus};
use crate::{Graph, GraphBuilder};

fn certified(graph: Graph, name: String) -> Certified {
    Certified {
        graph,
        status: PlanarityStatus::Planar,
        name,
    }
}

/// Path on `n` nodes.
///
/// Certified [`PlanarityStatus::Planar`] (a tree). Deterministic:
/// fully determined by `n`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn path(n: usize) -> Certified {
    assert!(n > 0, "path requires n > 0");
    let g = Graph::from_edges(n, (0..n.saturating_sub(1)).map(|i| (i, i + 1)))
        .expect("path edges valid");
    certified(g, format!("path(n={n})"))
}

/// Cycle on `n ≥ 3` nodes.
///
/// Certified [`PlanarityStatus::Planar`] (outerplanar). Deterministic:
/// fully determined by `n`.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Certified {
    assert!(n >= 3, "cycle requires n >= 3");
    let g = Graph::from_edges(n, (0..n).map(|i| (i, (i + 1) % n))).expect("cycle edges valid");
    certified(g, format!("cycle(n={n})"))
}

/// Star with one hub and `n − 1` leaves.
///
/// Certified [`PlanarityStatus::Planar`] (a tree). Deterministic:
/// fully determined by `n`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn star(n: usize) -> Certified {
    assert!(n > 0, "star requires n > 0");
    let g = Graph::from_edges(n, (1..n).map(|i| (0, i))).expect("star edges valid");
    certified(g, format!("star(n={n})"))
}

/// `rows × cols` grid.
///
/// Certified [`PlanarityStatus::Planar`] (grid drawing). Deterministic:
/// fully determined by the dimensions.
///
/// # Panics
///
/// Panics if either dimension is 0.
pub fn grid(rows: usize, cols: usize) -> Certified {
    assert!(rows > 0 && cols > 0, "grid requires positive dimensions");
    let idx = |r: usize, c: usize| r * cols + c;
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(idx(r, c), idx(r, c + 1)).expect("in range");
            }
            if r + 1 < rows {
                b.add_edge(idx(r, c), idx(r + 1, c)).expect("in range");
            }
        }
    }
    certified(b.build(), format!("grid({rows}x{cols})"))
}

/// `rows × cols` grid with one diagonal per cell (still planar, denser,
/// arboricity 3 — a good stress input for the forest-decomposition step).
///
/// Certified [`PlanarityStatus::Planar`] (each added diagonal stays
/// inside its cell). Deterministic: fully determined by the dimensions.
///
/// # Panics
///
/// Panics if either dimension is 0.
pub fn triangulated_grid(rows: usize, cols: usize) -> Certified {
    assert!(rows > 0 && cols > 0, "grid requires positive dimensions");
    let idx = |r: usize, c: usize| r * cols + c;
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(idx(r, c), idx(r, c + 1)).expect("in range");
            }
            if r + 1 < rows {
                b.add_edge(idx(r, c), idx(r + 1, c)).expect("in range");
            }
            if r + 1 < rows && c + 1 < cols {
                b.add_edge(idx(r, c), idx(r + 1, c + 1)).expect("in range");
            }
        }
    }
    certified(b.build(), format!("tri_grid({rows}x{cols})"))
}

/// Random recursive tree: node `i ≥ 1` attaches to a uniform node `< i`.
///
/// Certified [`PlanarityStatus::Planar`] (a tree). Randomized:
/// consumes `n − 1` draws from `rng`; the same seeded RNG reproduces
/// the same graph bit for bit (the contract `generators::spec` builds
/// on).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn random_tree<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Certified {
    assert!(n > 0, "tree requires n > 0");
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        let p = rng.random_range(0..i);
        b.add_edge(p, i).expect("in range");
    }
    certified(b.build(), format!("random_tree(n={n})"))
}

/// Random Apollonian network (stacked triangulation): a *maximal* planar
/// graph with `m = 3n − 6`, built by repeatedly subdividing a random
/// triangular face with a new vertex.
///
/// Certified [`PlanarityStatus::Planar`] (face subdivision preserves
/// planarity). Randomized: deterministic given the seeded `rng`.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn apollonian<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Certified {
    apollonian_with_faces(n, rng).0
}

/// Like [`apollonian`], but also returns the oriented triangular face list
/// of the final triangulation — each directed edge appears in exactly one
/// face, so the list determines a planar rotation system (used as an
/// embedding hint for large experiments).
pub fn apollonian_with_faces<R: Rng + ?Sized>(
    n: usize,
    rng: &mut R,
) -> (Certified, Vec<[usize; 3]>) {
    assert!(n >= 3, "apollonian requires n >= 3");
    let mut b = GraphBuilder::new(n);
    b.add_edge(0, 1).expect("in range");
    b.add_edge(1, 2).expect("in range");
    b.add_edge(0, 2).expect("in range");
    // Both sides of the starting triangle are faces (the outer face of a
    // triangle is also a triangle), so stacking can happen anywhere.
    let mut faces: Vec<[usize; 3]> = vec![[0, 1, 2], [0, 2, 1]];
    for v in 3..n {
        let f = rng.random_range(0..faces.len());
        let [a, bb, c] = faces[f];
        b.add_edge(a, v).expect("in range");
        b.add_edge(bb, v).expect("in range");
        b.add_edge(c, v).expect("in range");
        faces[f] = [a, bb, v];
        faces.push([bb, c, v]);
        faces.push([c, a, v]);
    }
    (certified(b.build(), format!("apollonian(n={n})")), faces)
}

/// Random planar graph: an Apollonian network with each edge independently
/// kept with probability `keep` (planarity is closed under edge deletion).
///
/// Certified [`PlanarityStatus::Planar`] (subgraph of a planar graph).
/// Randomized: deterministic given the seeded `rng`.
///
/// # Panics
///
/// Panics if `n < 3` or `keep` is not in `[0, 1]`.
pub fn random_planar<R: Rng + ?Sized>(n: usize, keep: f64, rng: &mut R) -> Certified {
    assert!((0.0..=1.0).contains(&keep), "keep must be a probability");
    let full = apollonian_with_faces(n, rng).0.graph;
    let mut b = GraphBuilder::new(n);
    for (u, v) in full.edges() {
        if rng.random_bool(keep) {
            b.add_edge(u.index(), v.index()).expect("in range");
        }
    }
    certified(b.build(), format!("random_planar(n={n},keep={keep})"))
}

/// Maximal outerplanar graph: a fan/zig-zag triangulation of an `n`-gon
/// with random diagonal choices (planar, even outerplanar).
///
/// Certified [`PlanarityStatus::Planar`] (all edges drawn inside one
/// polygon). Randomized: deterministic given the seeded `rng`.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn maximal_outerplanar<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Certified {
    assert!(n >= 3, "outerplanar requires n >= 3");
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        b.add_edge(i, (i + 1) % n).expect("in range");
    }
    // Triangulate the polygon by repeatedly splitting an ear off a random
    // side of the current sub-polygon (stack-based randomized fan).
    let mut stack: Vec<Vec<usize>> = vec![(0..n).collect()];
    while let Some(poly) = stack.pop() {
        if poly.len() < 4 {
            continue;
        }
        // Split at a random chord (0-indexed positions i < j, non-adjacent).
        let k = poly.len();
        let i = rng.random_range(0..k);
        let j = (i + 2 + rng.random_range(0..k - 3)) % k;
        let (lo, hi) = (i.min(j), i.max(j));
        if hi - lo < 2 || (lo == 0 && hi == k - 1) {
            stack.push(poly);
            continue;
        }
        b.add_edge(poly[lo], poly[hi]).expect("in range");
        stack.push(poly[lo..=hi].to_vec());
        let mut rest: Vec<usize> = poly[hi..].to_vec();
        rest.extend_from_slice(&poly[..=lo]);
        stack.push(rest);
    }
    certified(b.build(), format!("outerplanar(n={n})"))
}

/// A "city road network" style graph: a grid with random diagonal streets
/// and random road closures (still planar by construction). Used by the
/// `road_network` example.
///
/// Certified [`PlanarityStatus::Planar`] (only one diagonal per cell is
/// ever added). Randomized: deterministic given the seeded `rng`.
///
/// # Panics
///
/// Panics unless both dimensions are at least 2.
pub fn road_network<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Certified {
    assert!(
        rows > 1 && cols > 1,
        "road network needs at least a 2x2 grid"
    );
    let idx = |r: usize, c: usize| r * cols + c;
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols && rng.random_bool(0.95) {
                b.add_edge(idx(r, c), idx(r, c + 1)).expect("in range");
            }
            if r + 1 < rows && rng.random_bool(0.95) {
                b.add_edge(idx(r, c), idx(r + 1, c)).expect("in range");
            }
            if r + 1 < rows && c + 1 < cols && rng.random_bool(0.3) {
                // A diagonal is planar as long as the opposite diagonal of
                // the same cell is absent — we only ever add this one.
                b.add_edge(idx(r, c), idx(r + 1, c + 1)).expect("in range");
            }
        }
    }
    certified(b.build(), format!("road_network({rows}x{cols})"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xC0FFEE)
    }

    #[test]
    fn path_cycle_star_sizes() {
        assert_eq!(path(5).graph.m(), 4);
        assert_eq!(cycle(5).graph.m(), 5);
        assert_eq!(star(5).graph.m(), 4);
        assert_eq!(path(1).graph.m(), 0);
    }

    #[test]
    fn grid_sizes() {
        let g = grid(3, 4).graph;
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 3 * 3 + 2 * 4); // horizontal + vertical
        let t = triangulated_grid(3, 4).graph;
        assert_eq!(t.m(), g.m() + 2 * 3);
    }

    #[test]
    fn apollonian_is_maximal_planar_size() {
        let c = apollonian(50, &mut rng());
        assert_eq!(c.graph.n(), 50);
        assert_eq!(c.graph.m(), 3 * 50 - 6);
        assert!(c.status.is_planar());
    }

    #[test]
    fn apollonian_min_size() {
        let c = apollonian(3, &mut rng());
        assert_eq!(c.graph.m(), 3);
    }

    #[test]
    fn random_tree_is_tree() {
        let c = random_tree(40, &mut rng());
        assert_eq!(c.graph.m(), 39);
        assert!(crate::algo::components::is_connected(&c.graph));
        assert_eq!(crate::algo::girth::girth(&c.graph), None);
    }

    #[test]
    fn random_planar_keeps_subset() {
        let c = random_planar(60, 0.7, &mut rng());
        assert!(c.graph.m() <= 3 * 60 - 6);
        assert!(c.graph.m() > 0);
    }

    #[test]
    fn outerplanar_is_maximal() {
        let c = maximal_outerplanar(12, &mut rng());
        // A maximal outerplanar graph on n nodes has 2n - 3 edges.
        assert_eq!(c.graph.m(), 2 * 12 - 3);
    }

    #[test]
    fn outerplanar_small() {
        assert_eq!(maximal_outerplanar(3, &mut rng()).graph.m(), 3);
        assert_eq!(maximal_outerplanar(4, &mut rng()).graph.m(), 5);
    }

    #[test]
    fn road_network_within_planar_budget() {
        let c = road_network(8, 8, &mut rng());
        assert!(c.graph.m() <= 3 * c.graph.n() - 6);
        assert!(c.status.is_planar());
    }

    #[test]
    #[should_panic(expected = "requires n >= 3")]
    fn apollonian_too_small_panics() {
        let _ = apollonian(2, &mut rng());
    }
}
