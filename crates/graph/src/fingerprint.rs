//! Stable 128-bit content fingerprints.
//!
//! The query service layer (`planartest-service`) keys its graph
//! registry and result cache on *content*: two ingests of the same graph
//! must collide, across processes and across releases. `std`'s `Hash` is
//! explicitly unstable across releases and randomized per process for
//! `HashMap`, so the workspace uses this tiny fixed algorithm instead:
//! FNV-1a over a 128-bit state, folding in `u64` words in little-endian
//! byte order.
//!
//! The fingerprint is *not* cryptographic — it guards cache identity for
//! cooperating clients, not integrity against adversaries — but 128 bits
//! keep accidental collisions out of reach for any realistic registry
//! size.

use std::fmt;
use std::str::FromStr;

/// FNV-1a 128-bit offset basis.
const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
/// FNV-1a 128-bit prime.
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

/// An incremental FNV-1a 128-bit hasher over `u64` words.
///
/// # Example
///
/// ```
/// use planartest_graph::fingerprint::Digest;
///
/// let mut a = Digest::new();
/// a.word(1).word(2);
/// let mut b = Digest::new();
/// b.word(1).word(2);
/// assert_eq!(a.finish(), b.finish());
/// ```
#[derive(Debug, Clone)]
pub struct Digest {
    state: u128,
}

impl Default for Digest {
    fn default() -> Self {
        Digest::new()
    }
}

impl Digest {
    /// Creates a fresh digest at the FNV offset basis.
    #[must_use]
    pub fn new() -> Self {
        Digest { state: FNV_OFFSET }
    }

    /// Folds one `u64` word into the digest (little-endian bytes).
    pub fn word(&mut self, w: u64) -> &mut Self {
        for byte in w.to_le_bytes() {
            self.state ^= u128::from(byte);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Folds a string in, length-prefixed so concatenations can't collide.
    pub fn str(&mut self, s: &str) -> &mut Self {
        self.word(s.len() as u64);
        for byte in s.bytes() {
            self.state ^= u128::from(byte);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Folds an `f64` in by its IEEE-754 bit pattern.
    ///
    /// Bit-equality is the right notion for cache keys: two configs are
    /// interchangeable iff every derived constant is identical, which
    /// the bits guarantee and approximate equality does not.
    pub fn f64(&mut self, x: f64) -> &mut Self {
        self.word(x.to_bits())
    }

    /// The fingerprint of everything folded in so far.
    #[must_use]
    pub fn finish(&self) -> Fingerprint {
        Fingerprint(self.state)
    }
}

/// A stable 128-bit content fingerprint (see the [module docs](self)).
///
/// Displays as 32 lowercase hex digits and parses back via [`FromStr`],
/// which is the form the service wire protocol uses.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u128);

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl fmt::Debug for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fingerprint({:032x})", self.0)
    }
}

/// Error parsing a [`Fingerprint`] from hex.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFingerprintError;

impl fmt::Display for ParseFingerprintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("fingerprint must be 32 hex digits")
    }
}

impl std::error::Error for ParseFingerprintError {}

impl FromStr for Fingerprint {
    type Err = ParseFingerprintError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.len() != 32 {
            return Err(ParseFingerprintError);
        }
        u128::from_str_radix(s, 16)
            .map(Fingerprint)
            .map_err(|_| ParseFingerprintError)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_order_sensitive() {
        let fp = |words: &[u64]| {
            let mut d = Digest::new();
            for &w in words {
                d.word(w);
            }
            d.finish()
        };
        assert_eq!(fp(&[1, 2, 3]), fp(&[1, 2, 3]));
        assert_ne!(fp(&[1, 2, 3]), fp(&[3, 2, 1]));
        assert_ne!(fp(&[]), fp(&[0]));
    }

    #[test]
    fn strings_are_length_prefixed() {
        let fp = |parts: &[&str]| {
            let mut d = Digest::new();
            for p in parts {
                d.str(p);
            }
            d.finish()
        };
        assert_ne!(fp(&["ab", "c"]), fp(&["a", "bc"]));
        assert_eq!(fp(&["ab", "c"]), fp(&["ab", "c"]));
    }

    #[test]
    fn display_roundtrip() {
        let mut d = Digest::new();
        d.word(42).str("planartest").f64(0.1);
        let fp = d.finish();
        let text = fp.to_string();
        assert_eq!(text.len(), 32);
        assert_eq!(text.parse::<Fingerprint>().unwrap(), fp);
        assert!(text.parse::<Fingerprint>().unwrap() == fp);
        assert_eq!("xyz".parse::<Fingerprint>(), Err(ParseFingerprintError));
        assert_eq!(
            "zz".repeat(16).parse::<Fingerprint>(),
            Err(ParseFingerprintError)
        );
    }

    #[test]
    fn known_vector_is_stable_across_releases() {
        // Pinned output: if this changes, every persisted cache key
        // changes meaning. Bump deliberately or not at all.
        let mut d = Digest::new();
        d.word(0);
        assert_eq!(d.finish().to_string(), "9d30c1f78465995be47dda5e4e4e77ed");
    }
}
