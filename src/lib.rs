//! # planartest
//!
//! A faithful, executable reproduction of **"Property Testing of
//! Planarity in the CONGEST model"** (Reut Levi, Moti Medina, Dana Ron;
//! PODC 2018): a distributed one-sided-error property tester for
//! planarity running in `O(log n · poly(1/ε))` rounds, together with
//! every substrate it needs — a message-level CONGEST simulator, a graph
//! library with certified generators, planar-embedding machinery, the
//! minor-free partitioning algorithms, their applications
//! (cycle-freeness/bipartiteness testing, spanners), baselines and the
//! `Ω(log n)` lower-bound construction.
//!
//! This crate re-exports the workspace members:
//!
//! * [`graph`] (`planartest-graph`) — graphs, generators, classic
//!   algorithms;
//! * [`sim`] (`planartest-sim`) — the CONGEST engine and distributed
//!   primitives;
//! * [`embed`] (`planartest-embed`) — rotation systems and the Demoucron
//!   embedder;
//! * [`core`] (`planartest-core`) — the paper's two-stage tester and
//!   companions;
//! * [`service`] (`planartest-service`) — the query service layer:
//!   graph registry, one-sided-error result cache, batch-coalescing
//!   scheduler, and the `planartest` CLI.
//!
//! # Quickstart
//!
//! ```
//! use planartest::core::{PlanarityTester, TesterConfig};
//! use planartest::graph::generators::{nonplanar, planar};
//!
//! let planar_city = planar::triangulated_grid(8, 8);
//! let tangled = nonplanar::k5_chain(6);
//!
//! let tester = PlanarityTester::new(TesterConfig::new(0.1));
//! assert!(tester.run(&planar_city.graph)?.accepted());
//! assert!(!tester.run(&tangled.graph)?.accepted());
//! # Ok::<(), planartest::core::CoreError>(())
//! ```
//!
//! ## A note on Claim 10
//!
//! Implementing the paper surfaced a correctness gap: Claim 10 (planar
//! parts have no *violating* non-tree edges under embedding-derived
//! labels) is refuted by a 7-node planar counterexample — see
//! `EXPERIMENTS.md` (E6) and
//! `crates/core/tests/claim10_refutation.rs`. The default tester
//! therefore rejects on *certified* per-part non-planarity (an evidence
//! path the paper itself describes) and reports violating edges as
//! telemetry; the paper-faithful behaviour remains available as
//! [`core::EmbeddingMode::Demoucron`].

pub use planartest_core as core;
pub use planartest_embed as embed;
pub use planartest_graph as graph;
pub use planartest_service as service;
pub use planartest_sim as sim;
