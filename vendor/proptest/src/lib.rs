//! Offline stand-in for the crates.io [`proptest`] crate.
//!
//! Implements the subset of the proptest API this workspace uses —
//! [`Strategy`] over integer/float ranges, tuples, [`collection::vec`],
//! [`Strategy::prop_map`], [`ProptestConfig::with_cases`], and the
//! [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports its seed and case index in
//!   the panic message instead of a minimized input.
//! * **Deterministic case generation.** Cases derive from a fixed seed
//!   (hash of the test name), so failures always reproduce.
//!
//! [`proptest`]: https://crates.io/crates/proptest

use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The per-test RNG handed to strategies.
pub type TestRng = StdRng;

/// Run configuration for a [`proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of random values of type [`Strategy::Value`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// A strategy that always yields clones of one value ([`Just`]).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec`s of `element` values with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.is_empty() {
                self.size.start
            } else {
                rng.random_range(self.size.clone())
            };
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};

    /// The `prop::` path alias used by idiomatic proptest code
    /// (`prop::collection::vec(...)`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Derives the base RNG seed for a named test (FNV-1a over the name).
#[must_use]
pub fn seed_for_test(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Builds the RNG for one case of a named test.
#[must_use]
pub fn rng_for_case(name: &str, case: u32) -> TestRng {
    TestRng::seed_from_u64(seed_for_test(name) ^ (u64::from(case) << 32 | u64::from(case)))
}

/// Property-test entry point; see the crate docs for the supported
/// subset (named-argument `in` bindings, a leading `proptest_config`
/// attribute, no shrinking).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $(let $arg = $strategy;)+
                for case in 0..config.cases {
                    let mut rng = $crate::rng_for_case(stringify!($name), case);
                    $(
                        let $arg = $crate::Strategy::new_value(&$arg, &mut rng);
                    )+
                    let _ = case;
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($(#[$meta])* fn $name($($arg in $strategy),+) $body)*
        }
    };
}

/// `assert!` under a property-test body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a property-test body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a property-test body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respected(x in 3usize..9, y in -4i32..4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-4..4).contains(&y));
        }

        #[test]
        fn vec_lengths(v in prop::collection::vec(0u32..100, 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
            for x in v {
                prop_assert!(x < 100);
            }
        }

        #[test]
        fn map_composes(s in (0u64..50).prop_map(|x| x * 2)) {
            prop_assert!(s % 2 == 0 && s < 100);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::rng_for_case("foo", 3);
        let mut b = crate::rng_for_case("foo", 3);
        let mut c = crate::rng_for_case("bar", 3);
        use rand::RngCore;
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(b.next_u64(), c.next_u64());
    }
}
