//! Offline stand-in for the crates.io [`criterion`] crate.
//!
//! Provides the [`Criterion`] / [`BenchmarkGroup`] / [`Bencher`] surface
//! and the [`criterion_group!`] / [`criterion_main!`] macros so `cargo
//! bench` works without network access. Instead of criterion's full
//! statistics engine it runs a warm-up followed by a fixed measurement
//! window and prints mean ns/iteration per benchmark.
//!
//! [`criterion`]: https://crates.io/crates/criterion

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion-style.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How batched inputs are sized ([`Bencher::iter_batched`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch.
    SmallInput,
    /// Large inputs: few per batch.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// The per-benchmark timing driver.
pub struct Bencher {
    measured: Duration,
    iters: u64,
    budget: Duration,
}

impl Bencher {
    fn new(budget: Duration) -> Self {
        Bencher {
            measured: Duration::ZERO,
            iters: 0,
            budget,
        }
    }

    /// Times repeated calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up (also primes caches/allocator).
        for _ in 0..3 {
            std_black_box(routine());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < self.budget {
            std_black_box(routine());
            iters += 1;
        }
        self.measured = start.elapsed();
        self.iters = iters.max(1);
    }

    /// Times `routine` over inputs produced by `setup`; only the routine
    /// is measured.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..3 {
            std_black_box(routine(setup()));
        }
        let mut measured = Duration::ZERO;
        let mut iters = 0u64;
        let wall = Instant::now();
        while wall.elapsed() < self.budget {
            let input = setup();
            let start = Instant::now();
            std_black_box(routine(input));
            measured += start.elapsed();
            iters += 1;
        }
        self.measured = measured;
        self.iters = iters.max(1);
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in sizes runs by wall
    /// clock, not sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.criterion.measurement_time);
        f(&mut b);
        let per_iter = b.measured.as_nanos() / u128::from(b.iters);
        println!(
            "{}/{:<32} {:>12} ns/iter ({} iters)",
            self.name, id, per_iter, b.iters
        );
        self
    }

    /// Finishes the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep `cargo bench` fast; override with CRITERION_MEASURE_MS.
        let ms = std::env::var("CRITERION_MEASURE_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300);
        Criterion {
            measurement_time: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a group function running each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures() {
        let mut b = Bencher::new(Duration::from_millis(10));
        b.iter(|| black_box(2u64 + 2));
        assert!(b.iters >= 1);
        let mut b = Bencher::new(Duration::from_millis(10));
        b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        assert!(b.iters >= 1);
    }

    #[test]
    fn group_runs() {
        let mut c = Criterion {
            measurement_time: Duration::from_millis(5),
        };
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        let mut ran = false;
        g.bench_function("noop", |b| {
            ran = true;
            b.iter(|| 1 + 1)
        });
        g.finish();
        assert!(ran);
    }
}
