//! Offline stand-in for the crates.io [`rand`] crate.
//!
//! The planartest build environment has no network access, so this
//! workspace vendors a minimal, dependency-free implementation of the
//! subset of the `rand` 0.9 API the repository uses:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256\*\* generator seeded
//!   through SplitMix64 (`seed_from_u64` gives a platform-independent,
//!   reproducible stream — the property every planartest experiment
//!   relies on; the *stream itself* differs from crates.io `StdRng`,
//!   which is ChaCha-based);
//! * the [`Rng`] extension trait: [`Rng::random`], [`Rng::random_range`],
//!   [`Rng::random_bool`];
//! * [`SeedableRng`] with [`SeedableRng::seed_from_u64`];
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! [`rand`]: https://crates.io/crates/rand

use std::ops::Range;

/// The core of a random number generator: a source of `u32`/`u64` words.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64
    /// exactly like crates.io `rand` does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types that [`Rng::random`] can produce.
pub trait StandardSample: Sized {
    /// Draws one value from the "standard" distribution of the type
    /// (uniform over the value range; `[0, 1)` for floats).
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Widening-multiply rejection sampling (Lemire); unbiased.
                let zone = u128::from(u64::MAX) + 1;
                let max_ok = zone - zone % span;
                loop {
                    let x = u128::from(rng.next_u64());
                    if x < max_ok {
                        return (self.start as i128 + (x % span) as i128) as $t;
                    }
                }
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::standard_sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution.
    fn random<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} not in [0, 1]");
        f64::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256\*\*.
    ///
    /// Passes BigCrush-grade statistical tests and is seedable to a
    /// reproducible stream via [`SeedableRng::seed_from_u64`]. Note the
    /// stream differs from crates.io `StdRng` (ChaCha12); all planartest
    /// experiments only require *determinism*, not a specific stream.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [
                    0x9E3779B97F4A7C15,
                    0x6A09E667F3BCC909,
                    0xBB67AE8584CAA73B,
                    0x3C6EF372FE94F82B,
                ];
            }
            StdRng { s }
        }
    }

    /// A small, fast generator — alias of [`StdRng`] in this stand-in.
    pub type SmallRng = StdRng;
}

pub mod seq {
    //! Sequence-related extensions.

    use super::{Rng, RngCore};

    /// Shuffling and sampling on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns one uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = rng.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: i32 = rng.random_range(-5..5);
            assert!((-5..5).contains(&y));
            let f: f64 = rng.random_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        assert!((sum / 1000.0 - 0.5).abs() < 0.05, "mean {sum}");
    }

    #[test]
    fn bool_probabilities() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..1000).filter(|_| rng.random_bool(0.2)).count();
        assert!((120..280).contains(&hits), "hits {hits}");
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "astronomically unlikely");
    }

    #[test]
    fn works_through_unsized_refs() {
        fn takes_dyn<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.random_range(0..10u64)
        }
        let mut rng = StdRng::seed_from_u64(5);
        assert!(takes_dyn(&mut rng) < 10);
    }
}
